//! The dynamic determinism auditor (`repolint audit`).
//!
//! The static rules exist to protect one property: a job chain's output
//! is byte-identical for every worker-thread count. This module checks
//! the property directly — it runs the full algorithm suite (RCCIS,
//! cascade, 1-Bucket, All-Replicate and the matrix family) on a seeded
//! workload under `worker_threads` 1, 2 and 8, serializes each run's
//! output **through the Dfs** (the same store the algorithms chain
//! cycles through), and byte-diffs the Dfs contents across thread
//! counts. User counters from the whole chain are serialized into the
//! same snapshot, so counter drift fails the audit too. Every family is
//! additionally re-run with the reduce-memory budget pinned to
//! [`SPILL_BUDGET`], so the spilled reduce path is byte-diffed against
//! the in-memory baseline under every thread count as well.
//!
//! The workload comes from a tiny in-module LCG rather than an RNG
//! crate: the auditor itself must be deterministic (rule `wall-clock`
//! applies to this crate as well).

use ij_core::all_matrix::AllMatrix;
use ij_core::all_replicate::AllReplicate;
use ij_core::cascade::TwoWayCascade;
use ij_core::gen_matrix::GenMatrix;
use ij_core::hybrid::{AllSeqMatrix, Fcts, Fstc, Pasm};
use ij_core::one_bucket::OneBucketTheta;
use ij_core::rccis::Rccis;
use ij_core::two_way::TwoWayJoin;
use ij_core::{Algorithm, JoinInput};
use ij_interval::AllenPredicate::{Before, Contains, Overlaps};
use ij_interval::{Interval, Relation};
use ij_mapreduce::metrics::names;
use ij_mapreduce::{
    is_execution_shape, ClusterConfig, CostModel, Dfs, Engine, SchedConfig, SchedPolicy, Telemetry,
    TelemetryConfig, VirtualClock,
};
use ij_query::JoinQuery;
use std::sync::Arc;

/// Thread counts every algorithm family is audited under.
pub const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// The pinned low reduce-memory budget (approx bytes per bucket) every
/// family is re-audited under. Small enough that interval-record buckets
/// at the default audit scale spill to the Dfs, so the audit byte-diffs
/// the *spilled* reduce path against the in-memory baseline.
pub const SPILL_BUDGET: u64 = 256;

/// The audit verdict for one algorithm family.
#[derive(Debug)]
pub struct AuditCase {
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Whether all thread counts produced byte-identical snapshots.
    pub identical: bool,
    /// Output tuple count of the baseline run (sanity: the workload must
    /// actually exercise the join).
    pub output_count: u64,
    /// Which unlimited-budget thread counts diverged from the baseline.
    pub diverged: Vec<usize>,
    /// Which thread counts diverged under the pinned [`SPILL_BUDGET`].
    pub budget_diverged: Vec<usize>,
    /// Which cross-policy legs diverged (scheduler grant policies must
    /// never change output bytes; see [`crate::audit::SCHED_POLICIES`]).
    pub policy_diverged: Vec<&'static str>,
    /// Buckets spilled under the pinned budget (single-thread run) — how
    /// hard the budgeted re-audit actually exercised the spill path.
    pub spilled_buckets: u64,
}

/// The grant policies every family is cross-checked under (the default
/// skew-driven policy is the baseline's).
pub const SCHED_POLICIES: [SchedPolicy; 3] = [
    SchedPolicy::SkewDriven,
    SchedPolicy::Uniform,
    SchedPolicy::AllSerial,
];

/// The skew-scheduler audit leg: a deliberately skewed bucket mix run
/// under every policy × thread count × budget, byte-diffed against the
/// skew-driven single-thread baseline, with the scheduler's execution
/// shape asserted on the heavy run (grants must actually exceed 1).
#[derive(Debug, Default)]
pub struct SchedAudit {
    /// Whether every policy/thread/budget combination was byte-identical.
    pub identical: bool,
    /// The combinations that diverged, as `policy@threads[+budget]`.
    pub diverged: Vec<String>,
    /// Output tuple count of the baseline run.
    pub output_count: u64,
    /// `sched.heavy_buckets` of the skew-driven 8-thread run — the mix
    /// must actually contain heavy buckets.
    pub heavy_buckets: u64,
    /// Largest per-bucket thread grant of the skew-driven 8-thread run
    /// (from the `sched.grant_threads` histogram) — must exceed 1, i.e.
    /// the heavy bucket really received a multi-thread grant.
    pub max_grant: u64,
}

/// The full audit result.
#[derive(Debug, Default)]
pub struct AuditReport {
    /// One entry per algorithm family.
    pub cases: Vec<AuditCase>,
    /// The dedicated skew-scheduler leg.
    pub sched: Option<SchedAudit>,
}

impl AuditReport {
    /// Whether every family was byte-identical across all thread counts,
    /// budgets and grant policies — including the dedicated sched leg,
    /// which must additionally prove a real multi-thread grant landed on
    /// the heavy bucket.
    pub fn deterministic(&self) -> bool {
        !self.cases.is_empty()
            && self.cases.iter().all(|c| c.identical)
            && self
                .sched
                .as_ref()
                .is_some_and(|s| s.identical && s.heavy_buckets > 0 && s.max_grant > 1)
    }

    /// Human-readable summary, one line per family.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.cases {
            let verdict = if c.identical {
                format!("byte-identical ({} spilled buckets)", c.spilled_buckets)
            } else if c.budget_diverged.is_empty() && c.policy_diverged.is_empty() {
                format!("DIVERGED at threads {:?}", c.diverged)
            } else {
                format!(
                    "DIVERGED at threads {:?}, budget {SPILL_BUDGET}B at {:?}, policies {:?}",
                    c.diverged, c.budget_diverged, c.policy_diverged
                )
            };
            out.push_str(&format!(
                "{:16} threads {:?}: {} ({} output tuples)\n",
                c.algorithm, THREAD_COUNTS, verdict, c.output_count,
            ));
        }
        if let Some(s) = &self.sched {
            let verdict = if s.identical {
                "byte-identical".to_string()
            } else {
                format!("DIVERGED at {:?}", s.diverged)
            };
            out.push_str(&format!(
                "sched leg (skewed mix, policies {:?}): {verdict}, {} heavy buckets, max grant {} ({} output tuples)\n",
                SCHED_POLICIES.map(|p| p.name()),
                s.heavy_buckets,
                s.max_grant,
                s.output_count,
            ));
        }
        out.push_str(if self.deterministic() {
            "audit: PASS — all families byte-identical across thread counts, budgets and grant policies\n"
        } else {
            "audit: FAIL — nondeterministic output or inert skew scheduler detected\n"
        });
        out
    }
}

/// A splitmix-style LCG: deterministic, dependency-free workload seeds.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Builds a seeded workload of `n` intervals per relation over a dense
/// time domain (plenty of overlap, so every algorithm family produces
/// output and heavy buckets engage the parallel kernels).
fn workload(q: &JoinQuery, seed: u64, n: usize) -> JoinInput {
    let mut rng = Lcg(seed);
    let rels: Vec<Relation> = (0..q.num_relations())
        .map(|r| {
            Relation::from_intervals(
                format!("R{r}"),
                (0..n).map(|_| {
                    let s = (rng.next() % 400) as i64;
                    let len = (rng.next() % 50) as i64;
                    Interval::new(s, s + len).expect("len >= 0")
                }),
            )
        })
        .collect();
    JoinInput::bind_owned(q, rels).expect("relation count matches query")
}

/// A deliberately skewed workload for the sched leg: 7/8 of the intervals
/// crowd a hot region at the start of the time domain, so one reducer
/// bucket dominates the reduce phase — the mix the skew-driven scheduler
/// exists for (heavy bucket classified, multi-thread grant landed).
fn skewed_workload(q: &JoinQuery, seed: u64, n: usize) -> JoinInput {
    let mut rng = Lcg(seed);
    let rels: Vec<Relation> = (0..q.num_relations())
        .map(|r| {
            Relation::from_intervals(
                format!("R{r}"),
                (0..n).map(|_| {
                    let hot = !rng.next().is_multiple_of(8);
                    let span = if hot { 40 } else { 400 };
                    let s = (rng.next() % span) as i64;
                    let len = (rng.next() % 50) as i64;
                    Interval::new(s, s + len).expect("len >= 0")
                }),
            )
        })
        .collect();
    JoinInput::bind_owned(q, rels).expect("relation count matches query")
}

fn engine_with_threads(threads: usize, budget: Option<u64>, policy: SchedPolicy) -> Engine {
    Engine::new(ClusterConfig {
        reducer_slots: 4,
        worker_threads: threads,
        intra_reduce_threads: threads,
        // Low threshold so the intra-reducer parallel kernels actually
        // engage — the audit must cover the chunked execution path.
        heavy_bucket_threshold: 64,
        reduce_memory_budget: budget,
        sched: SchedConfig::with_policy(policy),
        cost: CostModel::default(),
    })
}

/// A satisfiable colocation *clique* — every pair directly conditioned,
/// so reducers route to the event-list sweep (the `[Overlaps, Overlaps]`
/// chain does not qualify and stays on the dual-window sweep; both
/// colocation kernel paths are audited). Shared by the suite and the
/// sched leg.
fn clique_query() -> JoinQuery {
    JoinQuery::new(
        3,
        vec![
            ij_query::Condition::whole(0, Overlaps, 1),
            ij_query::Condition::whole(1, Contains, 2),
            ij_query::Condition::whole(0, Overlaps, 2),
        ],
    )
    .expect("colocation clique")
}

/// The audited suite: every algorithm family with a query class it
/// supports (colocation for RCCIS/All-Rep, hybrid for the cascade and
/// matrix family, sequence for All-Matrix, two-way for 1-Bucket).
fn suite() -> Vec<(Box<dyn Algorithm>, JoinQuery)> {
    let colo = JoinQuery::chain(&[Overlaps, Overlaps]).expect("colocation chain");
    let hybrid = JoinQuery::chain(&[Overlaps, Before]).expect("hybrid chain");
    let seq = JoinQuery::chain(&[Before, Before]).expect("sequence chain");
    let pair = JoinQuery::chain(&[Overlaps]).expect("two-way chain");
    let clique = clique_query();
    vec![
        (Box::new(Rccis::new(6)) as Box<dyn Algorithm>, colo.clone()),
        (Box::new(AllReplicate::new(4)), colo.clone()),
        (Box::new(AllReplicate::new(4)), clique),
        (Box::new(TwoWayCascade::new(4)), hybrid.clone()),
        (Box::new(AllMatrix::new(3)), seq.clone()),
        (Box::new(AllSeqMatrix::new(3)), hybrid.clone()),
        (Box::new(Pasm::new(3)), hybrid.clone()),
        (Box::new(GenMatrix::new(3)), hybrid.clone()),
        (Box::new(Fcts::new(4, 3)), hybrid.clone()),
        (Box::new(Fstc::new(4, 3)), hybrid),
        (Box::new(OneBucketTheta::new(4, 4)), pair.clone()),
        (Box::new(TwoWayJoin::new(4)), pair),
    ]
}

/// One run's observations: the byte snapshot that joins the determinism
/// diff, plus the execution-shape signals (spill and scheduler counters)
/// the audit asserts on separately.
struct Snapshot {
    /// Output tuples, data-plane counters and data-plane telemetry,
    /// written through and read back from a fresh [`Dfs`].
    bytes: Vec<u8>,
    /// Output tuple count.
    count: u64,
    /// The run's `spill.buckets` total.
    spilled_buckets: u64,
    /// The run's `sched.heavy_buckets` total.
    heavy_buckets: u64,
    /// Largest per-bucket thread grant (`sched.grant_threads` histogram).
    max_grant: u64,
}

/// Runs one policy/thread/budget combination and captures a [`Snapshot`].
fn snapshot(
    algo: &dyn Algorithm,
    q: &JoinQuery,
    input: &JoinInput,
    threads: usize,
    budget: Option<u64>,
    policy: SchedPolicy,
) -> Result<Snapshot, String> {
    // A virtual clock keeps telemetry timestamps at zero, and a small
    // heartbeat quantum makes reduce-side heartbeats actually fire at
    // audit scale — the data-plane telemetry snapshot joins the byte-diff
    // below, so heartbeat/gauge/histogram drift across thread counts or
    // budgets fails the audit exactly like output drift.
    let telemetry = Arc::new(Telemetry::with_clock(
        TelemetryConfig {
            heartbeat_every: 8,
            ..TelemetryConfig::default()
        },
        Arc::new(VirtualClock::new()),
    ));
    let engine =
        engine_with_threads(threads, budget, policy).with_telemetry(Arc::clone(&telemetry));
    let out = algo
        .run(q, input, &engine)
        .map_err(|e| format!("{} failed under {threads} threads: {e}", algo.name()))?;
    let mut lines = Vec::with_capacity(out.tuples.len() + 8);
    lines.push(format!("algorithm={}", algo.name()));
    lines.push(format!("count={}", out.count));
    for t in &out.tuples {
        lines.push(format!("{t:?}"));
    }
    let counters = out.chain.total_counters();
    for (k, v) in counters.iter() {
        // Execution-shape counters (`kernel.parallel_buckets`, `spill.*`)
        // describe how the run was physically scheduled — they are
        // legitimately thread-count- and budget-dependent, so like the
        // wall-time metrics they are excluded from the byte-diff. Every
        // data-plane counter (emission, candidate, replica and
        // kernel-routing counts) stays.
        if is_execution_shape(k) {
            continue;
        }
        lines.push(format!("counter {k}={v}"));
    }
    let tel_snapshot = telemetry.snapshot();
    for line in tel_snapshot.data_plane().to_prometheus().lines() {
        lines.push(format!("telemetry {line}"));
    }
    let dfs = Dfs::new();
    let path = format!("audit/{}", algo.name());
    dfs.write(&path, lines)
        .map_err(|e| format!("dfs write failed: {e}"))?;
    let stored = dfs
        .read::<String>(&path)
        .map_err(|e| format!("dfs read failed: {e}"))?;
    Ok(Snapshot {
        bytes: stored.join("\n").into_bytes(),
        count: out.count,
        spilled_buckets: counters.get(names::SPILL_BUCKETS),
        heavy_buckets: counters.get(names::SCHED_HEAVY_BUCKETS),
        max_grant: tel_snapshot
            .histograms
            .get(names::SCHED_GRANT_THREADS)
            .and_then(|h| h.max())
            .unwrap_or(0),
    })
}

/// Runs the audit. `scale` is the per-relation interval count (the CLI
/// default is 120 — small enough to finish in seconds, dense enough to
/// produce thousands of candidate pairs per reducer).
///
/// Each family is audited twice per thread count: with an unlimited
/// reduce-memory budget (the in-memory merge path) and with the pinned
/// [`SPILL_BUDGET`] (the spill-to-Dfs path), plus two cross-policy legs
/// at the highest thread count (alternate grant policies, where grants
/// differ most from the default). Every run must byte-match the
/// single-thread unlimited baseline. A dedicated skewed-mix sched leg
/// (see [`SchedAudit`]) then covers the full policy × thread × budget
/// matrix and asserts the skew-driven scheduler actually landed a
/// multi-thread grant on a heavy bucket.
pub fn run_audit(scale: usize) -> Result<AuditReport, String> {
    let mut report = AuditReport::default();
    let top_threads = THREAD_COUNTS[THREAD_COUNTS.len() - 1];
    for (algo, q) in suite() {
        let input = workload(&q, 0x5eed + q.num_relations() as u64, scale);
        let base = snapshot(
            algo.as_ref(),
            &q,
            &input,
            THREAD_COUNTS[0],
            None,
            SchedPolicy::SkewDriven,
        )?;
        let mut diverged = Vec::new();
        for &t in &THREAD_COUNTS[1..] {
            let s = snapshot(algo.as_ref(), &q, &input, t, None, SchedPolicy::SkewDriven)?;
            if s.bytes != base.bytes {
                diverged.push(t);
            }
        }
        let mut budget_diverged = Vec::new();
        let mut spilled_buckets = 0;
        for (i, &t) in THREAD_COUNTS.iter().enumerate() {
            let s = snapshot(
                algo.as_ref(),
                &q,
                &input,
                t,
                Some(SPILL_BUDGET),
                SchedPolicy::SkewDriven,
            )?;
            if i == 0 {
                spilled_buckets = s.spilled_buckets;
            }
            if s.bytes != base.bytes {
                budget_diverged.push(t);
            }
        }
        let mut policy_diverged = Vec::new();
        for (policy, budget) in [
            (SchedPolicy::Uniform, None),
            (SchedPolicy::AllSerial, Some(SPILL_BUDGET)),
        ] {
            let s = snapshot(algo.as_ref(), &q, &input, top_threads, budget, policy)?;
            if s.bytes != base.bytes {
                policy_diverged.push(policy.name());
            }
        }
        report.cases.push(AuditCase {
            algorithm: algo.name(),
            identical: diverged.is_empty()
                && budget_diverged.is_empty()
                && policy_diverged.is_empty(),
            output_count: base.count,
            diverged,
            budget_diverged,
            policy_diverged,
            spilled_buckets,
        });
    }
    report.sched = Some(run_sched_audit(scale)?);
    Ok(report)
}

/// The dedicated skew-scheduler leg: All-Replicate on the colocation
/// clique over the hot-region [`skewed_workload`], run under the full
/// [`SCHED_POLICIES`] × [`THREAD_COUNTS`] × {unbudgeted,
/// [`SPILL_BUDGET`]} matrix and byte-diffed against the skew-driven
/// single-thread unbudgeted baseline. The skew-driven top-thread run also
/// reports the scheduler's execution shape (heavy buckets, max grant) so
/// the audit can prove the heavy bucket really ran multi-threaded.
fn run_sched_audit(scale: usize) -> Result<SchedAudit, String> {
    let q = clique_query();
    let algo = AllReplicate::new(4);
    let input = skewed_workload(&q, 0x5ca1ed, scale);
    let top_threads = THREAD_COUNTS[THREAD_COUNTS.len() - 1];
    let base = snapshot(
        &algo,
        &q,
        &input,
        THREAD_COUNTS[0],
        None,
        SchedPolicy::SkewDriven,
    )?;
    let mut sched = SchedAudit {
        identical: true,
        output_count: base.count,
        ..SchedAudit::default()
    };
    for &policy in &SCHED_POLICIES {
        for &t in &THREAD_COUNTS {
            for budget in [None, Some(SPILL_BUDGET)] {
                let s = snapshot(&algo, &q, &input, t, budget, policy)?;
                if s.bytes != base.bytes {
                    let leg = match budget {
                        None => format!("{}@{t}", policy.name()),
                        Some(b) => format!("{}@{t}+{b}B", policy.name()),
                    };
                    sched.diverged.push(leg);
                }
                if policy == SchedPolicy::SkewDriven && t == top_threads && budget.is_none() {
                    sched.heavy_buckets = s.heavy_buckets;
                    sched.max_grant = s.max_grant;
                }
            }
        }
    }
    sched.identical = sched.diverged.is_empty();
    Ok(sched)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_is_deterministic() {
        let a: Vec<u64> = {
            let mut r = Lcg(7);
            (0..5).map(|_| r.next()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Lcg(7);
            (0..5).map(|_| r.next()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn audit_snapshots_embed_data_plane_telemetry() {
        let (algo, q) = suite().remove(0);
        let input = workload(&q, 0x5eed + q.num_relations() as u64, 40);
        let s = snapshot(algo.as_ref(), &q, &input, 1, None, SchedPolicy::SkewDriven)
            .expect("snapshot");
        let text = String::from_utf8(s.bytes).expect("utf8");
        assert!(
            text.contains("telemetry # TYPE ij_progress_jobs_started gauge"),
            "telemetry lines missing from audit snapshot"
        );
        assert!(text.contains("telemetry # TYPE ij_reduce_bucket_pairs histogram"));
        let heartbeats = text
            .lines()
            .find_map(|l| l.strip_prefix("telemetry ij_telemetry_heartbeats_reduce "))
            .and_then(|v| v.parse::<u64>().ok())
            .expect("reduce heartbeat series present");
        assert!(
            heartbeats > 0,
            "heartbeat quantum of 8 never fired:\n{text}"
        );
        // Execution-shape telemetry must NOT be in the byte-diffed bytes.
        assert!(!text.contains("ij_telemetry_stragglers"));
        assert!(!text.contains("ij_reduce_service_ns"));
        assert!(!text.contains("ij_spill_run_bytes"));
        // The grant histogram varies with the sched policy — it must stay
        // out of the diff, or every cross-policy leg would diverge.
        assert!(!text.contains("ij_sched_grant_threads"));
        assert!(!text.contains("counter sched."));
    }

    #[test]
    fn clique_family_routes_to_event_sweep() {
        // The third suite entry is the colocation clique; its reducers
        // must dispatch to the event-list sweep, and the routing counter —
        // a data-plane counter — must land in the byte-diffed snapshot.
        let (algo, q) = suite().remove(2);
        assert_eq!(q.conditions().len(), 3, "clique has all three pairs");
        let input = workload(&q, 0x5eed + q.num_relations() as u64, 40);
        let s = snapshot(algo.as_ref(), &q, &input, 1, None, SchedPolicy::SkewDriven)
            .expect("snapshot");
        let text = String::from_utf8(s.bytes).expect("utf8");
        let buckets = text
            .lines()
            .find_map(|l| {
                l.strip_prefix(&format!("counter {}=", names::KERNEL_EVENT_SWEEP_BUCKETS))
            })
            .and_then(|v| v.parse::<u64>().ok())
            .expect("event sweep routing counter present in snapshot");
        assert!(buckets > 0, "clique reducers never took the event sweep");
    }

    #[test]
    fn small_audit_passes_and_produces_output() {
        let report = run_audit(40).expect("audit runs");
        assert!(report.deterministic(), "{}", report.render());
        assert_eq!(report.cases.len(), 12);
        for c in &report.cases {
            assert!(
                c.output_count > 0,
                "{} produced no output — workload too sparse",
                c.algorithm
            );
        }
        assert!(
            report.cases.iter().any(|c| c.spilled_buckets > 0),
            "pinned budget of {SPILL_BUDGET}B spilled nothing — budget too generous\n{}",
            report.render()
        );
    }

    #[test]
    fn sched_leg_is_identical_and_grants_exceed_one() {
        let sched = run_sched_audit(40).expect("sched leg runs");
        assert!(
            sched.identical,
            "grant policies changed output bytes: {:?}",
            sched.diverged
        );
        assert!(sched.output_count > 0, "skewed mix produced no output");
        assert!(
            sched.heavy_buckets > 0,
            "skewed mix classified no bucket heavy — hot region too sparse"
        );
        assert!(
            sched.max_grant > 1,
            "heavy bucket never received a multi-thread grant (max {})",
            sched.max_grant
        );
    }
}
