//! The cross-file call graph built from [`crate::symbols`] fact sets.
//!
//! Resolution policy (DESIGN.md §15): plain calls (`name(…)`) and method
//! calls (`.name(…)`) resolve to every function of that name defined in
//! the **same crate** — an over-approximation within the crate, and a
//! deliberate under-approximation across crates, so trait dynamic
//! dispatch (a `reducer.reduce(…)` that lands in the algorithm crate)
//! doesn't pull every kernel into the engine's panic closure.
//! Path-qualified calls (`Type::name(…)`) resolve by impl-qualified name
//! across **all** crates, since the target is unambiguous. Unresolved
//! calls (std, closures, dynamic dispatch) simply contribute no edge.

use crate::symbols::{FileSymbols, PanicSite};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One function node.
#[derive(Debug, Clone)]
pub struct Node {
    /// `Type::name` or the bare name — what reports print.
    pub display: String,
    /// Bare function name.
    pub name: String,
    /// Workspace-relative defining file.
    pub path: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Crate the function is defined in.
    pub crate_name: String,
    /// Panic sites inside the body.
    pub panics: Vec<PanicSite>,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Function nodes, in file-then-definition order.
    pub nodes: Vec<Node>,
    /// `edges[i]` = sorted, deduplicated callee node indices of node `i`.
    pub edges: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph from per-file symbol sets.
    pub fn build(files: &[FileSymbols]) -> CallGraph {
        let mut nodes = Vec::new();
        for f in files {
            for d in &f.fns {
                nodes.push(Node {
                    display: d.display().to_string(),
                    name: d.name.clone(),
                    path: f.path.clone(),
                    line: d.line,
                    crate_name: f.crate_name.clone(),
                    panics: d.panics.clone(),
                });
            }
        }
        // (crate, bare name) -> node indices; (qualified name) -> indices.
        let mut by_name: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut by_qual: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, n) in nodes.iter().enumerate() {
            by_name
                .entry((n.crate_name.as_str(), n.name.as_str()))
                .or_default()
                .push(i);
            if n.display.contains("::") {
                by_qual.entry(n.display.as_str()).or_default().push(i);
            }
        }
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        let mut idx = 0usize;
        for f in files {
            for d in &f.fns {
                for c in &d.calls {
                    let targets: Option<&Vec<usize>> = match &c.qual {
                        Some(q) => by_qual
                            .get(q.as_str())
                            .or_else(|| by_name.get(&(f.crate_name.as_str(), c.callee.as_str()))),
                        None => by_name.get(&(f.crate_name.as_str(), c.callee.as_str())),
                    };
                    if let Some(ts) = targets {
                        edges[idx].extend(ts.iter().copied());
                    }
                }
                edges[idx].sort_unstable();
                edges[idx].dedup();
                idx += 1;
            }
        }
        CallGraph { nodes, edges }
    }

    /// BFS from `entries`; returns a parent array — `parent[i]` is
    /// `Some(p)` when node `i` was first reached via `p` (`p == i` for an
    /// entry itself), `None` when unreachable.
    pub fn reach(&self, entries: &[usize]) -> Vec<Option<usize>> {
        let mut parent: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for &e in entries {
            if parent[e].is_none() {
                parent[e] = Some(e);
                queue.push_back(e);
            }
        }
        while let Some(n) = queue.pop_front() {
            for &m in &self.edges[n] {
                if parent[m].is_none() {
                    parent[m] = Some(n);
                    queue.push_back(m);
                }
            }
        }
        parent
    }

    /// The entry-to-`node` call path implied by a [`CallGraph::reach`]
    /// parent array, as ` → `-joined display names.
    pub fn path_to(&self, parent: &[Option<usize>], node: usize) -> String {
        let mut chain = vec![node];
        let mut cur = node;
        while let Some(p) = parent[cur] {
            if p == cur {
                break;
            }
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        chain
            .iter()
            .map(|&i| self.nodes[i].display.as_str())
            .collect::<Vec<_>>()
            .join(" → ")
    }

    /// Hand-written JSON dump for CI artifacts:
    /// `{"nodes": [{"id", "fn", "path", "line", "crate", "panic_sites"}],
    ///   "edges": [[from, to], …]}`.
    pub fn to_json(&self) -> String {
        let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        let mut out = String::from("{\n  \"nodes\": [");
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"id\": {i}, \"fn\": \"{}\", \"path\": \"{}\", \
                 \"line\": {}, \"crate\": \"{}\", \"panic_sites\": {}}}",
                esc(&n.display),
                esc(&n.path),
                n.line,
                esc(&n.crate_name),
                n.panics.len()
            );
        }
        out.push_str("\n  ],\n  \"edges\": [");
        let mut first = true;
        for (from, tos) in self.edges.iter().enumerate() {
            for &to in tos {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "\n    [{from}, {to}]");
            }
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::symbols::extract;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let syms: Vec<_> = files.iter().map(|(p, s)| extract(p, &lex(s))).collect();
        CallGraph::build(&syms)
    }

    fn idx(g: &CallGraph, display: &str) -> usize {
        g.nodes.iter().position(|n| n.display == display).unwrap()
    }

    #[test]
    fn same_crate_calls_resolve_across_files() {
        let g = graph(&[
            (
                "crates/mapreduce/src/engine.rs",
                "impl Engine { pub fn run_job(&self) { helper(); } }",
            ),
            ("crates/mapreduce/src/job.rs", "pub fn helper() {}"),
        ]);
        let run = idx(&g, "Engine::run_job");
        let helper = idx(&g, "helper");
        assert_eq!(g.edges[run], vec![helper]);
    }

    #[test]
    fn cross_crate_needs_qualification() {
        let g = graph(&[
            (
                "crates/mapreduce/src/engine.rs",
                "fn a() { reduce(); } fn b() { Kernel::reduce(); }",
            ),
            (
                "crates/core/src/kernel/mod.rs",
                "impl Kernel { pub fn reduce() {} }",
            ),
        ]);
        let a = idx(&g, "a");
        let b = idx(&g, "b");
        let reduce = idx(&g, "Kernel::reduce");
        // Unqualified `reduce()` must NOT cross the crate boundary…
        assert!(g.edges[a].is_empty(), "{:?}", g.edges[a]);
        // …but the path-qualified call resolves.
        assert_eq!(g.edges[b], vec![reduce]);
    }

    #[test]
    fn method_calls_resolve_within_the_crate() {
        let g = graph(&[(
            "crates/mapreduce/src/engine.rs",
            "impl Engine { fn outer(&self) { self.inner(); } fn inner(&self) {} }",
        )]);
        let outer = idx(&g, "Engine::outer");
        let inner = idx(&g, "Engine::inner");
        assert_eq!(g.edges[outer], vec![inner]);
    }

    #[test]
    fn reach_returns_shortest_parents_and_paths() {
        let g = graph(&[(
            "crates/mapreduce/src/engine.rs",
            "fn a() { b(); } fn b() { c(); } fn c() {} fn island() {}",
        )]);
        let (a, c, island) = (idx(&g, "a"), idx(&g, "c"), idx(&g, "island"));
        let parent = g.reach(&[a]);
        assert!(parent[c].is_some());
        assert!(parent[island].is_none());
        assert_eq!(g.path_to(&parent, c), "a → b → c");
    }

    #[test]
    fn recursion_does_not_loop() {
        let g = graph(&[(
            "crates/mapreduce/src/engine.rs",
            "fn a() { b(); } fn b() { a(); }",
        )]);
        let parent = g.reach(&[idx(&g, "a")]);
        assert!(parent.iter().all(Option::is_some));
    }

    #[test]
    fn json_dump_is_well_formed_enough_for_ci() {
        let g = graph(&[(
            "crates/mapreduce/src/engine.rs",
            "fn a() { b(); } fn b() { x.unwrap(); }",
        )]);
        let j = g.to_json();
        assert!(j.contains("\"fn\": \"a\""));
        assert!(j.contains("\"panic_sites\": 1"));
        assert!(j.contains("[0, 1]"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
