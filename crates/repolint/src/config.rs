//! Rule registry and path scoping.
//!
//! Each rule guards one determinism or soundness invariant of the
//! workspace (DESIGN.md §11). Scoping is path-based and intentionally
//! conservative: a rule fires everywhere inside its scope unless an
//! explicit `// repolint: allow(<rule>): <justification>` marker
//! suppresses it.

/// Stable rule identifiers (these are the names allow-markers use).
pub const UNORDERED_ITER: &str = "unordered-iter";
/// See [`UNORDERED_ITER`].
pub const WALL_CLOCK: &str = "wall-clock";
/// See [`UNORDERED_ITER`].
pub const NO_PANIC: &str = "no-panic";
/// See [`UNORDERED_ITER`].
pub const KERNEL_DOC: &str = "kernel-doc";
/// Call-graph rule: no panic-capable function reachable from the engine
/// entry points (`repolint graph`).
pub const PANIC_PROPAGATION: &str = "panic-propagation";
/// Call-graph rule: counter/histogram names must come from the
/// `mapreduce::metrics::names` registry (`repolint graph`).
pub const COUNTER_REGISTRY: &str = "counter-registry";
/// Call-graph rule: no nested lock acquisitions, no lock held across a
/// `ValueStream` pull or Dfs I/O (`repolint graph`).
pub const LOCK_DISCIPLINE: &str = "lock-discipline";
/// Emitted for malformed allow-markers (unknown rule, no justification).
pub const BAD_MARKER: &str = "bad-marker";

/// One rule's registry entry.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable identifier (`unordered-iter`, …).
    pub name: &'static str,
    /// One-line description shown in reports.
    pub summary: &'static str,
}

/// Every rule the tool knows, in report order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: UNORDERED_ITER,
        summary: "no HashMap/HashSet in shuffle/output-feeding modules; \
                  use BTreeMap/BTreeSet or sort before iterating",
    },
    RuleInfo {
        name: WALL_CLOCK,
        summary: "no wall-clock, thread-id or entropy sources outside \
                  trace/bench/datagen allowlist",
    },
    RuleInfo {
        name: NO_PANIC,
        summary: "no unwrap/expect/panic in engine hot paths; typed \
                  EngineError only",
    },
    RuleInfo {
        name: KERNEL_DOC,
        summary: "every pub fn in core::kernel documents its \
                  predicate-class precondition",
    },
    RuleInfo {
        name: PANIC_PROPAGATION,
        summary: "no unwrap/expect/panic!/indexing-panic function \
                  transitively reachable from Engine::run_job, Dfs, spill \
                  or the telemetry data plane",
    },
    RuleInfo {
        name: COUNTER_REGISTRY,
        summary: "counter/histogram names are declared once in \
                  mapreduce::metrics::names and referenced as constants; \
                  execution-shape classifiers live in the registry",
    },
    RuleInfo {
        name: LOCK_DISCIPLINE,
        summary: "no nested .lock()/.read()/.write() acquisitions in one \
                  function; no lock held across a ValueStream pull or \
                  Dfs I/O call",
    },
];

/// Whether `name` is a known rule identifier.
pub fn is_known_rule(name: &str) -> bool {
    RULES.iter().any(|r| r.name == name) || name == BAD_MARKER
}

/// Normalizes a path to forward slashes for matching.
fn norm(path: &str) -> String {
    path.replace('\\', "/")
}

/// R1 scope: modules whose iteration order can reach emitted pairs,
/// shuffle keys or reported metrics — the algorithm crate and the engine.
pub fn in_unordered_iter_scope(path: &str) -> bool {
    let p = norm(path);
    p.contains("crates/core/src/") || p.contains("crates/mapreduce/src/")
}

/// R2 scope: every crate source file except the explicit allowlist —
/// the tracer (wall-clock is its purpose), the bench harness, the
/// datagen crate (seeded generators; timing only feeds reports), and the
/// telemetry clock module — the *single* file where the telemetry plane
/// may touch `Instant`; the rest of `telemetry/` must go through the
/// injectable `Clock` trait and so stays in scope.
pub fn in_wall_clock_scope(path: &str) -> bool {
    let p = norm(path);
    if !p.contains("crates/") || !p.contains("/src/") {
        return false;
    }
    let allowlisted = p.contains("crates/bench/")
        || p.contains("crates/datagen/")
        || p.ends_with("crates/mapreduce/src/trace.rs")
        || p.ends_with("crates/mapreduce/src/telemetry/clock.rs");
    !allowlisted
}

/// R3 scope: the engine's reduce/shuffle hot paths, plus the whole live
/// telemetry plane (it runs inside those hot paths, so a panic there is a
/// panic in the engine).
pub fn in_no_panic_scope(path: &str) -> bool {
    let p = norm(path);
    p.ends_with("crates/mapreduce/src/engine.rs")
        || p.ends_with("crates/mapreduce/src/dfs.rs")
        || p.ends_with("crates/mapreduce/src/job.rs")
        || p.ends_with("crates/mapreduce/src/schedule.rs")
        || p.ends_with("crates/mapreduce/src/spill.rs")
        || p.contains("crates/mapreduce/src/telemetry/")
}

/// R4 scope: the predicate-specialized kernel layer.
pub fn in_kernel_doc_scope(path: &str) -> bool {
    norm(path).contains("crates/core/src/kernel/")
}

/// Keywords (lowercase) that count as stating a predicate-class
/// precondition in a kernel doc comment. A doc must contain at least one.
pub const PRECONDITION_KEYWORDS: &[&str] = &[
    "single-attribute",
    "colocation",
    "sequence",
    "predicate",
    "allen",
    "condition set",
    "any query class",
    "class-independent",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_match_expected_paths() {
        assert!(in_unordered_iter_scope("crates/core/src/cascade.rs"));
        assert!(in_unordered_iter_scope("crates/mapreduce/src/fault.rs"));
        assert!(!in_unordered_iter_scope("crates/query/src/query.rs"));

        assert!(in_wall_clock_scope("crates/query/src/query.rs"));
        assert!(!in_wall_clock_scope("crates/mapreduce/src/trace.rs"));
        assert!(!in_wall_clock_scope("crates/bench/src/scenarios.rs"));
        assert!(!in_wall_clock_scope("crates/datagen/src/lib.rs"));
        assert!(!in_wall_clock_scope(
            "crates/mapreduce/src/telemetry/clock.rs"
        ));
        assert!(
            in_wall_clock_scope("crates/mapreduce/src/telemetry/mod.rs"),
            "only clock.rs is allowlisted; the rest of telemetry/ must use Clock"
        );
        assert!(in_wall_clock_scope(
            "crates/mapreduce/src/telemetry/hist.rs"
        ));

        assert!(in_no_panic_scope("crates/mapreduce/src/engine.rs"));
        assert!(in_no_panic_scope("crates/mapreduce/src/schedule.rs"));
        assert!(in_no_panic_scope("crates/mapreduce/src/spill.rs"));
        assert!(in_no_panic_scope("crates/mapreduce/src/telemetry/mod.rs"));
        assert!(in_no_panic_scope(
            "crates/mapreduce/src/telemetry/recorder.rs"
        ));
        assert!(!in_no_panic_scope("crates/mapreduce/src/metrics.rs"));

        assert!(in_wall_clock_scope("crates/mapreduce/src/spill.rs"));

        assert!(in_kernel_doc_scope("crates/core/src/kernel/mod.rs"));
        assert!(!in_kernel_doc_scope("crates/core/src/cascade.rs"));
    }
}
