//! The cross-file rule families run over the workspace call graph
//! (`repolint graph`): panic-propagation, counter-registry and
//! lock-discipline. See DESIGN.md §15 for the rule semantics and the
//! documented false-negative classes.
//!
//! All three families honor the same allow-marker grammar as the token
//! rules; `panic-propagation` additionally accepts an existing
//! `allow(no-panic)` marker at a site, so the hot-path files never need
//! double markers for one invariant.

use crate::callgraph::CallGraph;
use crate::config;
use crate::lexer::{lex, LexedFile, TokKind};
use crate::rules::{parse_markers, Marker, Violation};
use crate::symbols::{extract, FileSymbols, LockIssueKind};
use crate::{scan, symbols};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// Call-graph entry points: `Engine::run_job` plus everything defined in
/// `dfs.rs`, `spill.rs` or `telemetry/` (the issue's "`Engine::run_job`,
/// `Dfs`, `spill`, or the telemetry data plane").
fn is_entry_file(path: &str) -> bool {
    path.ends_with("/dfs.rs") || path.ends_with("/spill.rs") || path.contains("/telemetry/")
}

fn is_registry_file(path: &str) -> bool {
    path.ends_with("/metrics/names.rs")
}

/// Metric-recording methods whose first string argument *must* be a
/// registered name.
const RECORDING_METHODS: &[&str] = &["inc", "record", "inc_series", "record_hist"];

/// Classifier functions that must live inside the registry module.
const REGISTRY_CLASSIFIERS: &[&str] = &["is_execution_shape", "is_execution_shape_series"];

/// One parsed input file: symbols plus markers.
struct AnalyzedFile {
    syms: FileSymbols,
    markers: Vec<Marker>,
    lexed: LexedFile,
}

/// Runs the three graph rule families over `(path, source)` pairs and
/// returns the violations, sorted by `(path, line, rule)`. This is the
/// fixture-testable core of [`check_workspace_graph`].
pub fn analyze(files: &[(String, String)]) -> Vec<Violation> {
    let analyzed: Vec<AnalyzedFile> = files
        .iter()
        .map(|(path, src)| {
            let lexed = lex(src);
            AnalyzedFile {
                syms: extract(path, &lexed),
                markers: parse_markers(&lexed),
                lexed,
            }
        })
        .collect();
    let graph = CallGraph::build(&analyzed.iter().map(|a| a.syms.clone()).collect::<Vec<_>>());
    let mut out = Vec::new();
    panic_propagation(&graph, &analyzed, &mut out);
    counter_registry(&analyzed, &mut out);
    lock_discipline(&analyzed, &mut out);
    out.sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    out
}

/// Builds the call graph for `(path, source)` pairs (exposed so callers
/// can dump it alongside the violations).
pub fn build_graph(files: &[(String, String)]) -> CallGraph {
    let syms: Vec<FileSymbols> = files
        .iter()
        .map(|(path, src)| extract(path, &lex(src)))
        .collect();
    CallGraph::build(&syms)
}

/// Scans the workspace under `root`, runs [`analyze`], and returns
/// `(violations, call_graph, files_scanned)`.
pub fn check_workspace_graph(root: &Path) -> std::io::Result<(Vec<Violation>, CallGraph, usize)> {
    let paths = scan::workspace_sources(root)?;
    let mut files = Vec::with_capacity(paths.len());
    for rel in &paths {
        let src = std::fs::read_to_string(root.join(rel))?;
        files.push((rel.to_string_lossy().replace('\\', "/"), src));
    }
    let violations = analyze(&files);
    let graph = build_graph(&files);
    Ok((violations, graph, files.len()))
}

fn marker_allows(markers: &[Marker], rules: &[&str], line: u32) -> bool {
    rules
        .iter()
        .any(|r| markers.iter().any(|m| m.covers(r, line)))
}

// ---------------------------------------------------------------------------
// Family 1: panic-propagation

fn panic_propagation(graph: &CallGraph, files: &[AnalyzedFile], out: &mut Vec<Violation>) {
    let markers_by_path: BTreeMap<&str, &Vec<Marker>> = files
        .iter()
        .map(|a| (a.syms.path.as_str(), &a.markers))
        .collect();
    let entries: Vec<usize> = graph
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| n.display == "Engine::run_job" || is_entry_file(&n.path))
        .map(|(i, _)| i)
        .collect();
    let parent = graph.reach(&entries);
    let mut seen: BTreeSet<(String, u32, String)> = BTreeSet::new();
    for (i, n) in graph.nodes.iter().enumerate() {
        if parent[i].is_none() || n.panics.is_empty() {
            continue;
        }
        let allows = markers_by_path.get(n.path.as_str());
        for site in &n.panics {
            let allowed = allows.is_some_and(|ms| {
                marker_allows(
                    ms,
                    &[config::PANIC_PROPAGATION, config::NO_PANIC],
                    site.line,
                )
            });
            if allowed || !seen.insert((n.path.clone(), site.line, site.what.clone())) {
                continue;
            }
            let chain = graph.path_to(&parent, i);
            out.push(Violation {
                rule: config::PANIC_PROPAGATION,
                path: n.path.clone(),
                line: site.line,
                message: format!(
                    "{} in `{}` is reachable from the engine data plane via {}",
                    site.what, n.display, chain
                ),
                suggestion: "return a typed `EngineError`, restructure so the \
                             panic cannot fire, or mark `// repolint: \
                             allow(panic-propagation): <why it cannot fire>`"
                    .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Family 2: counter-registry

/// Parses `pub const IDENT: &str = "value";` declarations from the
/// registry module's token stream, mapping value → const name.
fn parse_registry(lexed: &LexedFile) -> BTreeMap<String, String> {
    let toks = &lexed.tokens;
    let mut map = BTreeMap::new();
    for i in 0..toks.len() {
        let is = |k: usize, kind: TokKind, text: &str| {
            toks.get(i + k)
                .map(|t| t.kind == kind && t.text == text)
                .unwrap_or(false)
        };
        // const NAME : & str = "value" ;
        if is(0, TokKind::Ident, "const")
            && toks.get(i + 1).map(|t| t.kind) == Some(TokKind::Ident)
            && is(2, TokKind::Punct, ":")
            && is(3, TokKind::Punct, "&")
            && is(4, TokKind::Ident, "str")
            && is(5, TokKind::Punct, "=")
            && toks.get(i + 6).map(|t| t.kind) == Some(TokKind::Str)
        {
            map.insert(toks[i + 6].text.clone(), toks[i + 1].text.clone());
        }
    }
    map
}

fn counter_registry(files: &[AnalyzedFile], out: &mut Vec<Violation>) {
    let registry: Option<(&AnalyzedFile, BTreeMap<String, String>)> = files
        .iter()
        .find(|a| is_registry_file(&a.syms.path))
        .map(|a| (a, parse_registry(&a.lexed)));

    for a in files {
        if is_registry_file(&a.syms.path) {
            continue;
        }
        // Classifier functions must live inside the registry module.
        for d in &a.syms.fns {
            if REGISTRY_CLASSIFIERS.contains(&d.name.as_str())
                && !marker_allows(&a.markers, &[config::COUNTER_REGISTRY], d.line)
            {
                out.push(Violation {
                    rule: config::COUNTER_REGISTRY,
                    path: a.syms.path.clone(),
                    line: d.line,
                    message: format!(
                        "`fn {}` defined outside `metrics/names.rs`: the \
                         execution-shape sets can silently drift",
                        d.name
                    ),
                    suggestion: "move the classifier into the \
                                 `metrics::names` registry and re-export it \
                                 at this path"
                        .to_string(),
                });
            }
        }
        for u in &a.syms.str_uses {
            if marker_allows(&a.markers, &[config::COUNTER_REGISTRY], u.line) {
                continue;
            }
            let recording = u
                .record_call
                .as_deref()
                .is_some_and(|m| RECORDING_METHODS.contains(&m));
            match &registry {
                Some((_, consts)) => {
                    if let Some(cname) = consts.get(&u.value) {
                        // Any literal duplicating a registered name — in a
                        // recording call or not — must use the constant.
                        out.push(Violation {
                            rule: config::COUNTER_REGISTRY,
                            path: a.syms.path.clone(),
                            line: u.line,
                            message: format!(
                                "string literal \"{}\" duplicates the \
                                 registered counter name `names::{}`",
                                u.value, cname
                            ),
                            suggestion: format!(
                                "use `names::{cname}` so the registry stays \
                                 the single source of truth"
                            ),
                        });
                    } else if recording {
                        out.push(Violation {
                            rule: config::COUNTER_REGISTRY,
                            path: a.syms.path.clone(),
                            line: u.line,
                            message: format!(
                                "`.{}(\"{}\", …)` records a name not declared \
                                 in `mapreduce::metrics::names`",
                                u.record_call.as_deref().unwrap_or(""),
                                u.value
                            ),
                            suggestion: format!(
                                "declare `pub const …: &str = \"{}\";` in \
                                 metrics/names.rs and pass the constant",
                                u.value
                            ),
                        });
                    }
                }
                None if recording => {
                    out.push(Violation {
                        rule: config::COUNTER_REGISTRY,
                        path: a.syms.path.clone(),
                        line: u.line,
                        message: format!(
                            "`.{}(\"{}\", …)` recorded but no \
                             `metrics/names.rs` registry module exists",
                            u.record_call.as_deref().unwrap_or(""),
                            u.value
                        ),
                        suggestion: "create the `mapreduce::metrics::names` \
                                     registry module and declare every \
                                     counter name there"
                            .to_string(),
                    });
                }
                None => {}
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Family 3: lock-discipline

fn lock_discipline(files: &[AnalyzedFile], out: &mut Vec<Violation>) {
    for a in files {
        for d in &a.syms.fns {
            for issue in &d.lock_issues {
                if marker_allows(&a.markers, &[config::LOCK_DISCIPLINE], issue.line) {
                    continue;
                }
                let what = match issue.kind {
                    LockIssueKind::Nested => "nested lock acquisition",
                    LockIssueKind::AcrossIo => "lock held across stream/Dfs I/O",
                };
                out.push(Violation {
                    rule: config::LOCK_DISCIPLINE,
                    path: a.syms.path.clone(),
                    line: issue.line,
                    message: format!("{what} in `{}`: {}", d.display(), issue.detail),
                    suggestion: "scope the outer guard so it drops before the \
                                 inner acquisition / I/O, or mark \
                                 `// repolint: allow(lock-discipline): <why \
                                 the order is deadlock-free>`"
                        .to_string(),
                });
            }
        }
    }
}

// Re-export so `symbols::crate_of` stays reachable for integration tests
// without a second path.
pub use symbols::crate_of;

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> Vec<Violation> {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        analyze(&owned)
    }

    const NAMES_RS: &str = "pub const SPILL_RUNS: &str = \"spill.runs\";\n";

    #[test]
    fn panic_in_helper_reachable_from_run_job_is_flagged() {
        let v = run(&[
            (
                "crates/mapreduce/src/engine.rs",
                "impl Engine { pub fn run_job(&self) { helper(); } }",
            ),
            (
                "crates/mapreduce/src/job.rs",
                "pub fn helper() { maybe().unwrap(); }\nfn maybe() -> Option<u8> { None }",
            ),
        ]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, config::PANIC_PROPAGATION);
        assert!(
            v[0].message.contains("Engine::run_job → helper"),
            "{}",
            v[0].message
        );
    }

    #[test]
    fn marker_suppresses_propagated_panic() {
        let v = run(&[
            (
                "crates/mapreduce/src/engine.rs",
                "impl Engine { pub fn run_job(&self) { helper(); } }",
            ),
            (
                "crates/mapreduce/src/job.rs",
                "pub fn helper() {\n\
                 // repolint: allow(panic-propagation): value seeded two lines up\n\
                 maybe().unwrap();\n}\n",
            ),
        ]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn existing_no_panic_marker_also_suppresses() {
        let v = run(&[(
            "crates/mapreduce/src/telemetry/hist.rs",
            "pub fn record(&mut self) {\n\
             // repolint: allow(no-panic): bucket_index clamps to len-1\n\
             self.counts[0] += 1;\n}\n",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unreachable_panic_is_not_flagged() {
        let v = run(&[(
            "crates/mapreduce/src/metrics.rs",
            "pub fn island() { x.unwrap(); }",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unregistered_recording_name_is_flagged() {
        let v = run(&[
            ("crates/mapreduce/src/metrics/names.rs", NAMES_RS),
            (
                "crates/mapreduce/src/metrics.rs",
                "pub fn f(c: &Counters) { c.inc(\"spill.rogue\", 1); }",
            ),
        ]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, config::COUNTER_REGISTRY);
        assert!(v[0].message.contains("spill.rogue"));
    }

    #[test]
    fn literal_duplicating_registered_name_is_flagged() {
        let v = run(&[
            ("crates/mapreduce/src/metrics/names.rs", NAMES_RS),
            (
                "crates/bench/src/report.rs",
                "pub fn f(c: &Counters) { c.get(\"spill.runs\"); }",
            ),
        ]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(
            v[0].message.contains("names::SPILL_RUNS"),
            "{}",
            v[0].message
        );
    }

    #[test]
    fn classifier_outside_registry_is_flagged() {
        let v = run(&[
            ("crates/mapreduce/src/metrics/names.rs", NAMES_RS),
            (
                "crates/mapreduce/src/metrics.rs",
                "pub fn is_execution_shape(n: &str) -> bool { false }",
            ),
        ]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("is_execution_shape"));
    }

    #[test]
    fn missing_registry_is_flagged_on_recording() {
        let v = run(&[(
            "crates/mapreduce/src/metrics.rs",
            "pub fn f(c: &Counters) { c.inc(\"spill.runs\", 1); }",
        )]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("no `metrics/names.rs` registry"));
    }

    #[test]
    fn lock_discipline_flags_and_marker_suppresses() {
        let nested = "pub fn f(&self) {\n\
                      let a = self.files.write();\n\
                      let b = self.stats.write();\n}\n";
        let v = run(&[("crates/mapreduce/src/dfs.rs", nested)]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, config::LOCK_DISCIPLINE);
        let marked = "pub fn f(&self) {\n\
                      let a = self.files.write();\n\
                      // repolint: allow(lock-discipline): fixed global order files→stats\n\
                      let b = self.stats.write();\n}\n";
        assert!(run(&[("crates/mapreduce/src/dfs.rs", marked)]).is_empty());
    }
}
