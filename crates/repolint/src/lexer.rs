//! A minimal, dependency-free Rust lexer.
//!
//! This is not a full grammar — it is exactly the token model the lint
//! rules need: identifiers, punctuation, literals, and comments, each
//! tagged with a 1-based line number. The tricky parts of Rust's lexical
//! syntax that would otherwise cause false positives are handled
//! faithfully:
//!
//! * line and (nested) block comments, with doc-comment classification;
//! * string, raw-string (`r#"…"#`), byte-string and char literals —
//!   so `"HashMap"` inside a string never looks like an identifier;
//! * the char-literal vs. lifetime ambiguity (`'a'` vs. `'a`);
//! * numeric literals, including `0..n` ranges (the `.` stays punctuation).
//!
//! String-ish literals keep their *contents* (kind [`TokKind::Str`]) so
//! the counter-registry rule can compare metric-name literals against the
//! `mapreduce::metrics::names` registry; numeric and char literals stay
//! text-free ([`TokKind::Literal`]) — no rule inspects them.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// A single punctuation character.
    Punct,
    /// Numeric or char literal (no text).
    Literal,
    /// String / raw-string / byte-string literal; `text` holds the
    /// contents between the quotes (escapes resolved naively: the char
    /// after a `\` is kept verbatim).
    Str,
}

/// One token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Kind of token.
    pub kind: TokKind,
    /// Identifier text, the punctuation character as a 1-char string, or
    /// a string literal's contents. Empty for numeric/char literals.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

/// One comment (the rules read these for allow-markers and doc comments).
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment body, *including* the `//` / `/*` introducer.
    pub text: String,
    /// 1-based line of the comment's first character.
    pub line: u32,
    /// 1-based line of the comment's last character (equals `line` for
    /// line comments).
    pub end_line: u32,
    /// Whether this is a doc comment (`///`, `//!`, `/**`, `/*!`).
    pub doc: bool,
}

/// The lexed view of one source file.
#[derive(Debug, Default)]
pub struct LexedFile {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order, kept separately from the token stream.
    pub comments: Vec<Comment>,
}

/// Lexes `src`. Never fails: unterminated constructs simply run to EOF,
/// which is the forgiving behavior a linter wants.
pub fn lex(src: &str) -> LexedFile {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: LexedFile::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: LexedFile,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn run(mut self) -> LexedFile {
        while let Some(c) = self.peek(0) {
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(),
                '\'' => self.char_or_lifetime(),
                c if c.is_ascii_digit() => self.number_literal(),
                c if c == '_' || c.is_alphabetic() => self.ident_or_prefixed_literal(),
                _ => {
                    let line = self.line;
                    self.bump();
                    self.out.tokens.push(Token {
                        kind: TokKind::Punct,
                        text: c.to_string(),
                        line,
                    });
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        // `///` (but not `////`) and `//!` are doc comments.
        let doc = (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!");
        self.out.comments.push(Comment {
            text,
            line,
            end_line: line,
            doc,
        });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let mut depth = 0usize;
        loop {
            if self.peek(0) == Some('/') && self.peek(1) == Some('*') {
                depth += 1;
                text.push('/');
                text.push('*');
                self.bump();
                self.bump();
            } else if self.peek(0) == Some('*') && self.peek(1) == Some('/') {
                depth -= 1;
                text.push('*');
                text.push('/');
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else if let Some(c) = self.peek(0) {
                text.push(c);
                self.bump();
            } else {
                break; // unterminated: run to EOF
            }
        }
        let doc = (text.starts_with("/**") && !text.starts_with("/***") && text != "/**/")
            || text.starts_with("/*!");
        self.out.comments.push(Comment {
            text,
            line,
            end_line: self.line,
            doc,
        });
    }

    /// A plain `"…"` string (the opening quote is at `pos`). Contents are
    /// kept; an escape keeps the char after the `\` verbatim (good enough
    /// for metric-name comparison — registry names contain no escapes).
    fn string_literal(&mut self) {
        let line = self.line;
        let mut text = String::new();
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                }
                '"' => break,
                c => text.push(c),
            }
        }
        self.out.tokens.push(Token {
            kind: TokKind::Str,
            text,
            line,
        });
    }

    /// A raw string `r"…"` / `r#"…"#` with the `r`/`br` already consumed;
    /// `pos` sits on the first `#` or the opening quote. Contents are kept
    /// verbatim (no escape processing — raw strings have none).
    fn raw_string_literal(&mut self, line: u32) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        let mut text = String::new();
        'body: while let Some(c) = self.bump() {
            if c == '"' {
                for k in 0..hashes {
                    if self.peek(k) != Some('#') {
                        text.push(c);
                        continue 'body;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
            text.push(c);
        }
        self.out.tokens.push(Token {
            kind: TokKind::Str,
            text,
            line,
        });
    }

    /// Disambiguates `'a'` (char) from `'a` (lifetime) at a `'`.
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        self.bump(); // the quote
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume escape, then to closing quote.
                self.bump();
                self.bump();
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.out.tokens.push(Token {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line,
                });
            }
            Some(_) if self.peek(1) == Some('\'') => {
                // 'x' — a one-char literal.
                self.bump();
                self.bump();
                self.out.tokens.push(Token {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line,
                });
            }
            _ => {
                // A lifetime: consume the ident part, emit nothing (no rule
                // cares about lifetimes).
                while let Some(c) = self.peek(0) {
                    if c == '_' || c.is_alphanumeric() {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
    }

    fn number_literal(&mut self) {
        let line = self.line;
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                self.bump();
            } else if c == '.' {
                // Part of the number only when followed by a digit
                // (so `0..n` keeps its range dots as punctuation).
                match self.peek(1) {
                    Some(d) if d.is_ascii_digit() => {
                        self.bump();
                        self.bump();
                    }
                    _ => break,
                }
            } else {
                break;
            }
        }
        self.out.tokens.push(Token {
            kind: TokKind::Literal,
            text: String::new(),
            line,
        });
    }

    fn ident_or_prefixed_literal(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // r"…" / r#"…"# / br"…" / b"…" / b'…' literal prefixes.
        match (text.as_str(), self.peek(0)) {
            ("r" | "br", Some('"')) | ("r" | "br", Some('#')) => {
                self.raw_string_literal(line);
            }
            ("b", Some('"')) => self.string_literal(),
            ("b", Some('\'')) => self.char_or_lifetime(),
            _ => self.out.tokens.push(Token {
                kind: TokKind::Ident,
                text,
                line,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            // HashMap in a line comment
            /* HashMap in a /* nested */ block */
            let a = "HashMap";
            let b = r#"HashMap"#;
            let c = b"HashMap";
            real_ident();
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "HashMap"), "{ids:?}");
        assert!(ids.iter().any(|i| i == "real_ident"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let lexed = lex(src);
        let lits = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .count();
        assert_eq!(lits, 1); // only 'x'
        assert!(lexed.tokens.iter().any(|t| t.text == "str"));
    }

    #[test]
    fn range_dots_stay_punctuation() {
        let lexed = lex("for i in 0..10 { v[i].unwrap(); }");
        let puncts: String = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        assert!(puncts.contains(".."));
        assert!(lexed.tokens.iter().any(|t| t.text == "unwrap"));
    }

    #[test]
    fn doc_comments_are_classified() {
        let lexed = lex("/// outer\n//! inner\n// plain\n/** block */\nfn f() {}");
        let docs: Vec<bool> = lexed.comments.iter().map(|c| c.doc).collect();
        assert_eq!(docs, vec![true, true, false, true]);
    }

    #[test]
    fn lines_are_tracked() {
        let lexed = lex("a\nb\n  c");
        let lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    fn strs(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn string_contents_are_captured() {
        assert_eq!(strs(r#"c.inc("spill.runs", 1);"#), vec!["spill.runs"]);
        assert_eq!(strs(r#"let s = "a\"b";"#), vec!["a\"b"]);
        assert_eq!(strs(r#"let b = b"bytes";"#), vec!["bytes"]);
    }

    #[test]
    fn raw_strings_with_comment_markers_do_not_open_comments() {
        // `//` and `/*` inside raw strings must stay string contents: a
        // call site after them must still lex as code, and no comment may
        // be recorded.
        let src = "let a = r\"// not a comment\";\n\
                   let b = r#\"/* also not */ still text\"#;\n\
                   after();";
        let lexed = lex(src);
        assert!(lexed.comments.is_empty(), "{:?}", lexed.comments);
        assert!(lexed.tokens.iter().any(|t| t.text == "after"));
        let got = strs(src);
        assert_eq!(got, vec!["// not a comment", "/* also not */ still text"]);
    }

    #[test]
    fn nested_raw_strings_inside_macro_bodies() {
        // A raw string whose body contains quotes and hash-quote runs
        // shorter than its own delimiter, nested in a macro invocation —
        // call-site extraction after the macro must not be fooled.
        let src = "write!(out, r##\"quote \" and r#\"inner\"# done\"##).ok();\n\
                   c.inc(\"spill.runs\", 1);";
        let lexed = lex(src);
        let got: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(got, vec!["quote \" and r#\"inner\"# done", "spill.runs"]);
        assert!(lexed.tokens.iter().any(|t| t.text == "inc"));
        assert!(lexed.comments.is_empty());
    }

    #[test]
    fn unterminated_raw_string_runs_to_eof_without_panicking() {
        let lexed = lex("let x = r#\"never closed");
        assert_eq!(strs("let x = r#\"never closed"), vec!["never closed"]);
        assert!(lexed.tokens.iter().any(|t| t.text == "x"));
    }
}
