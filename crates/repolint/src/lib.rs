//! `repolint` — the workspace's determinism & soundness static-analysis
//! suite, paired with a dynamic determinism auditor.
//!
//! The engine promises byte-identical job output for every
//! `worker_threads` count (DESIGN.md §11). Four invariants make that
//! true, and each has a lint rule guarding it:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `unordered-iter` | no `HashMap`/`HashSet` where iteration order can reach shuffle keys, emitted pairs or metrics |
//! | `wall-clock` | no `SystemTime`/`Instant`/thread-id/entropy outside the trace/bench/datagen allowlist |
//! | `no-panic` | engine hot paths (`engine.rs`, `dfs.rs`, `job.rs`, `spill.rs`) return typed [`ij_mapreduce::EngineError`]s, never panic |
//! | `kernel-doc` | every `pub fn` in `core::kernel` states the predicate classes it is complete for |
//!
//! `repolint graph` (DESIGN.md §15) lifts the analysis across files: it
//! parses every crate's token stream into a call graph
//! ([`symbols`]/[`callgraph`]) and runs three semantic rule families
//! ([`graph`]) over it:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `panic-propagation` | no panic-capable function transitively reachable from `Engine::run_job`, the `Dfs`, the spill path or the telemetry data plane |
//! | `counter-registry` | every counter/histogram name is a `mapreduce::metrics::names` constant; the execution-shape classifiers are defined only in that registry |
//! | `lock-discipline` | no nested guard acquisitions; no guard held across a `ValueStream` pull or Dfs I/O call |
//!
//! `// repolint: allow(<rule>): <justification>` suppresses a rule for
//! the next line; `allow(<rule>, file)` for the whole file. The
//! justification is mandatory.
//!
//! The static pass is validated against the property it protects:
//! `repolint audit` ([`audit::run_audit`]) runs all eleven algorithm
//! families under threads 1/2/8 — with the reduce-memory budget both
//! unlimited and pinned low enough to spill — and byte-diffs their
//! Dfs-serialized output.

pub mod audit;
pub mod callgraph;
pub mod config;
pub mod graph;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scan;
pub mod symbols;

use rules::Violation;
use std::path::Path;

/// Lints every workspace source under `root` and returns
/// `(violations, files_scanned)`.
pub fn check_workspace(root: &Path) -> std::io::Result<(Vec<Violation>, usize)> {
    let files = scan::workspace_sources(root)?;
    let mut violations = Vec::new();
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        violations.extend(rules::check_file(&rel_str, &src));
    }
    Ok((violations, files.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_workspace_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .expect("workspace root");
        let (violations, scanned) = check_workspace(&root).expect("scan");
        assert!(
            scanned > 50,
            "expected a real workspace, saw {scanned} files"
        );
        assert!(
            violations.is_empty(),
            "workspace has lint violations:\n{}",
            report::to_text(&violations, scanned, true)
        );
    }
}
