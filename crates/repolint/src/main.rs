//! The `repolint` CLI.
//!
//! ```text
//! repolint check [--root PATH] [--format text|json] [--suggest]
//! repolint graph [--root PATH] [--format text|json] [--suggest] [--dump-graph PATH]
//! repolint audit [--scale N]
//! ```
//!
//! Exit codes: `0` clean / deterministic, `1` violations / divergence,
//! `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: repolint check [--root PATH] [--format text|json] [--suggest]\n\
         \u{20}      repolint graph [--root PATH] [--format text|json] [--suggest] [--dump-graph PATH]\n\
         \u{20}      repolint audit [--scale N]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => run_check(&args[1..]),
        Some("graph") => run_graph(&args[1..]),
        Some("audit") => run_audit(&args[1..]),
        _ => usage(),
    }
}

fn run_check(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut format = "text".to_string();
    let mut suggest = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage(),
            },
            "--format" => match it.next() {
                Some(f) if f == "text" || f == "json" => format = f.clone(),
                _ => return usage(),
            },
            "--suggest" => suggest = true,
            _ => return usage(),
        }
    }
    // Fall back to the workspace the binary was built from when invoked
    // outside a checkout (e.g. `cargo run -p repolint` from a subdir).
    if !root.join("crates").is_dir() {
        let manifest_root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
        if manifest_root.join("crates").is_dir() {
            root = manifest_root;
        }
    }
    match repolint::check_workspace(&root) {
        Ok((violations, scanned)) => {
            if format == "json" {
                print!("{}", repolint::report::to_json(&violations, scanned));
            } else {
                print!(
                    "{}",
                    repolint::report::to_text(&violations, scanned, suggest)
                );
            }
            if violations.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("repolint: scan failed: {e}");
            ExitCode::from(2)
        }
    }
}

fn run_graph(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut format = "text".to_string();
    let mut suggest = false;
    let mut dump: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage(),
            },
            "--format" => match it.next() {
                Some(f) if f == "text" || f == "json" => format = f.clone(),
                _ => return usage(),
            },
            "--suggest" => suggest = true,
            "--dump-graph" => match it.next() {
                Some(p) => dump = Some(PathBuf::from(p)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    if !root.join("crates").is_dir() {
        let manifest_root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
        if manifest_root.join("crates").is_dir() {
            root = manifest_root;
        }
    }
    match repolint::graph::check_workspace_graph(&root) {
        Ok((violations, graph, scanned)) => {
            if let Some(path) = dump {
                if let Err(e) = std::fs::write(&path, graph.to_json()) {
                    eprintln!("repolint: cannot write {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
            if format == "json" {
                print!("{}", repolint::report::to_json(&violations, scanned));
            } else {
                print!(
                    "{}",
                    repolint::report::to_text(&violations, scanned, suggest)
                );
            }
            if violations.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("repolint: graph scan failed: {e}");
            ExitCode::from(2)
        }
    }
}

fn run_audit(args: &[String]) -> ExitCode {
    let mut scale = 120usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => scale = n,
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    match repolint::audit::run_audit(scale) {
        Ok(report) => {
            print!("{}", report.render());
            if report.deterministic() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("repolint: audit failed: {e}");
            ExitCode::from(2)
        }
    }
}
