//! Report rendering: human text and machine-readable JSON.
//!
//! The JSON is written by hand (the tool is dependency-free); the schema
//! is stable so CI can archive and diff reports across runs:
//!
//! ```json
//! {
//!   "tool": "repolint",
//!   "files_scanned": 42,
//!   "violation_count": 1,
//!   "violations": [
//!     {"rule": "…", "path": "…", "line": 7,
//!      "message": "…", "suggestion": "…"}
//!   ]
//! }
//! ```

use crate::rules::Violation;
use std::fmt::Write as _;

/// Escapes `s` for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the machine-readable report.
pub fn to_json(violations: &[Violation], files_scanned: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"tool\": \"repolint\",");
    let _ = writeln!(out, "  \"files_scanned\": {files_scanned},");
    let _ = writeln!(out, "  \"violation_count\": {},", violations.len());
    out.push_str("  \"violations\": [");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        let _ = write!(
            out,
            "\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \
             \"message\": \"{}\", \"suggestion\": \"{}\"",
            json_escape(v.rule),
            json_escape(&v.path),
            v.line,
            json_escape(&v.message),
            json_escape(&v.suggestion),
        );
        out.push('}');
    }
    if !violations.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Renders the human report; with `suggest`, each violation carries its
/// mechanical fix suggestion.
pub fn to_text(violations: &[Violation], files_scanned: usize, suggest: bool) -> String {
    let mut out = String::new();
    for v in violations {
        let _ = writeln!(out, "{}:{}: [{}] {}", v.path, v.line, v.rule, v.message);
        if suggest {
            let _ = writeln!(out, "    fix: {}", v.suggestion);
        }
    }
    let _ = writeln!(
        out,
        "{} file(s) scanned, {} violation(s)",
        files_scanned,
        violations.len()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Violation> {
        vec![Violation {
            rule: "no-panic",
            path: "crates/x/src/a.rs".into(),
            line: 3,
            message: "a \"quoted\" message".into(),
            suggestion: "do\nbetter".into(),
        }]
    }

    #[test]
    fn json_is_escaped_and_structured() {
        let j = to_json(&sample(), 5);
        assert!(j.contains("\"violation_count\": 1"));
        assert!(j.contains("\\\"quoted\\\""));
        assert!(j.contains("do\\nbetter"));
        assert!(j.contains("\"files_scanned\": 5"));
    }

    #[test]
    fn empty_report_is_valid() {
        let j = to_json(&[], 7);
        assert!(j.contains("\"violations\": []"));
    }

    #[test]
    fn text_mentions_suggestion_only_on_request() {
        let plain = to_text(&sample(), 1, false);
        let with = to_text(&sample(), 1, true);
        assert!(!plain.contains("fix:"));
        assert!(with.contains("fix:"));
    }
}
