//! The lint rules, run over [`crate::lexer::LexedFile`]s.
//!
//! All rules share three conventions:
//!
//! * **Test code is exempt.** Tokens inside `#[cfg(test)]` items are
//!   skipped — the invariants protect production job output, and tests
//!   legitimately `unwrap()` and build scratch hash maps.
//! * **Allow-markers.** `// repolint: allow(<rule>): <why>` suppresses
//!   the named rule on the marker's comment block and the line after it;
//!   `// repolint: allow(<rule>, file): <why>` suppresses it for the
//!   whole file. The justification is mandatory — a bare marker is
//!   itself a violation (`bad-marker`).
//! * **Suggestions.** Every violation carries a mechanical fix
//!   suggestion; `--suggest` mode prints them.

use crate::config;
use crate::lexer::{lex, LexedFile, TokKind, Token};

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule identifier (see [`config::RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub suggestion: String,
}

/// A parsed `repolint: allow(...)` marker.
#[derive(Debug)]
pub(crate) struct Marker {
    pub(crate) rule: String,
    pub(crate) file_scope: bool,
    /// Suppressed line range, inclusive (line-scope markers cover their
    /// contiguous comment block plus the next source line).
    pub(crate) span: (u32, u32),
    pub(crate) justified: bool,
    pub(crate) line: u32,
}

impl Marker {
    /// Whether this marker suppresses `rule` on `line`.
    pub(crate) fn covers(&self, rule: &str, line: u32) -> bool {
        self.justified
            && self.rule == rule
            && (self.file_scope || (self.span.0 <= line && line <= self.span.1))
    }
}

/// Lints one file. `path` is the workspace-relative path used for rule
/// scoping and reporting.
pub fn check_file(path: &str, src: &str) -> Vec<Violation> {
    let lexed = lex(src);
    let markers = parse_markers(&lexed);
    let in_test = test_region_mask(&lexed.tokens);
    let mut out = Vec::new();

    for m in &markers {
        if !m.justified {
            out.push(Violation {
                rule: config::BAD_MARKER,
                path: path.to_string(),
                line: m.line,
                message: format!("allow-marker for `{}` lacks a justification", m.rule),
                suggestion: "write `// repolint: allow(<rule>): <why it is safe>`".to_string(),
            });
        } else if !config::is_known_rule(&m.rule) {
            out.push(Violation {
                rule: config::BAD_MARKER,
                path: path.to_string(),
                line: m.line,
                message: format!("allow-marker names unknown rule `{}`", m.rule),
                suggestion: format!(
                    "use one of: {}",
                    config::RULES
                        .iter()
                        .map(|r| r.name)
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            });
        }
    }

    let allowed = |rule: &str, line: u32| markers.iter().any(|m| m.covers(rule, line));

    if config::in_unordered_iter_scope(path) {
        rule_unordered_iter(path, &lexed, &in_test, &allowed, &mut out);
    }
    if config::in_wall_clock_scope(path) {
        rule_wall_clock(path, &lexed, &in_test, &allowed, &mut out);
    }
    if config::in_no_panic_scope(path) {
        rule_no_panic(path, &lexed, &in_test, &allowed, &mut out);
    }
    if config::in_kernel_doc_scope(path) {
        rule_kernel_doc(path, &lexed, &in_test, &allowed, &mut out);
    }

    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

// ---------------------------------------------------------------------------
// Allow-markers

pub(crate) fn parse_markers(lexed: &LexedFile) -> Vec<Marker> {
    let mut markers = Vec::new();
    for (i, c) in lexed.comments.iter().enumerate() {
        // Markers live in plain comments only — doc comments merely
        // *describe* the grammar (as this crate's own docs do).
        if c.doc {
            continue;
        }
        let Some(at) = c.text.find("repolint: allow(") else {
            continue;
        };
        let rest = &c.text[at + "repolint: allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let inside = &rest[..close];
        let (rule, file_scope) = match inside.split_once(',') {
            Some((r, flag)) => (r.trim().to_string(), flag.trim() == "file"),
            None => (inside.trim().to_string(), false),
        };
        // Justification: non-whitespace text after "):" on the same
        // comment (a multi-line comment block may continue it, but it must
        // *start* with the marker).
        let after = &rest[close + 1..];
        let justified = after
            .strip_prefix(':')
            .map(|j| !j.trim().is_empty())
            .unwrap_or(false);
        // Line-scope markers cover their contiguous comment run plus one
        // line of code below it.
        let mut end = c.end_line;
        for later in &lexed.comments[i + 1..] {
            if later.line == end + 1 {
                end = later.end_line;
            } else {
                break;
            }
        }
        markers.push(Marker {
            rule,
            file_scope,
            span: (c.line, end + 1),
            justified,
            line: c.line,
        });
    }
    markers
}

// ---------------------------------------------------------------------------
// #[cfg(test)] regions

/// Returns a per-token mask: `true` where the token sits inside a
/// `#[cfg(test)]` item (attribute through matching close brace).
pub(crate) fn test_region_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let is = |i: usize, kind: TokKind, text: &str| {
        tokens
            .get(i)
            .map(|t| t.kind == kind && t.text == text)
            .unwrap_or(false)
    };
    let mut i = 0;
    while i + 6 < tokens.len() {
        let hit = is(i, TokKind::Punct, "#")
            && is(i + 1, TokKind::Punct, "[")
            && is(i + 2, TokKind::Ident, "cfg")
            && is(i + 3, TokKind::Punct, "(")
            && is(i + 4, TokKind::Ident, "test")
            && is(i + 5, TokKind::Punct, ")")
            && is(i + 6, TokKind::Punct, "]");
        if !hit {
            i += 1;
            continue;
        }
        // Skip to the item's opening brace, then to its matching close.
        let mut j = i + 7;
        while j < tokens.len() && !is(j, TokKind::Punct, "{") {
            j += 1;
        }
        let mut depth = 0usize;
        let mut k = j;
        while k < tokens.len() {
            if is(k, TokKind::Punct, "{") {
                depth += 1;
            } else if is(k, TokKind::Punct, "}") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            k += 1;
        }
        for slot in mask.iter_mut().take((k + 1).min(tokens.len())).skip(i) {
            *slot = true;
        }
        i = k + 1;
    }
    mask
}

// ---------------------------------------------------------------------------
// R1: unordered-iter

fn rule_unordered_iter(
    path: &str,
    lexed: &LexedFile,
    in_test: &[bool],
    allowed: &dyn Fn(&str, u32) -> bool,
    out: &mut Vec<Violation>,
) {
    for (i, t) in lexed.tokens.iter().enumerate() {
        if in_test[i] || t.kind != TokKind::Ident {
            continue;
        }
        if t.text != "HashMap" && t.text != "HashSet" {
            continue;
        }
        if allowed(config::UNORDERED_ITER, t.line) {
            continue;
        }
        let ordered = if t.text == "HashMap" {
            "BTreeMap"
        } else {
            "BTreeSet"
        };
        out.push(Violation {
            rule: config::UNORDERED_ITER,
            path: path.to_string(),
            line: t.line,
            message: format!(
                "`{}` in a module feeding shuffle/output paths: iteration \
                 order is nondeterministic",
                t.text
            ),
            suggestion: format!(
                "use `{ordered}`, collect-and-sort before iterating, or mark \
                 `// repolint: allow(unordered-iter): <why order never \
                 escapes>`"
            ),
        });
    }
}

// ---------------------------------------------------------------------------
// R2: wall-clock

const ENTROPY_IDENTS: &[&str] = &[
    "SystemTime",
    "Instant",
    "thread_rng",
    "from_entropy",
    "OsRng",
];

fn rule_wall_clock(
    path: &str,
    lexed: &LexedFile,
    in_test: &[bool],
    allowed: &dyn Fn(&str, u32) -> bool,
    out: &mut Vec<Violation>,
) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if in_test[i] || t.kind != TokKind::Ident {
            continue;
        }
        let flagged = if ENTROPY_IDENTS.contains(&t.text.as_str()) {
            Some(t.text.clone())
        } else if t.text == "thread"
            && matches!(toks.get(i + 1), Some(n) if n.text == ":")
            && matches!(toks.get(i + 2), Some(n) if n.text == ":")
            && matches!(toks.get(i + 3), Some(n) if n.text == "current")
        {
            Some("thread::current".to_string())
        } else {
            None
        };
        let Some(name) = flagged else { continue };
        if allowed(config::WALL_CLOCK, t.line) {
            continue;
        }
        out.push(Violation {
            rule: config::WALL_CLOCK,
            path: path.to_string(),
            line: t.line,
            message: format!(
                "`{name}` outside the trace/bench/datagen allowlist: \
                 wall-clock, thread ids and entropy must never reach job \
                 output"
            ),
            suggestion: "thread timing through JobMetrics/Tracer, derive \
                         randomness from a seeded generator, or mark \
                         `// repolint: allow(wall-clock): <why it cannot \
                         reach output>`"
                .to_string(),
        });
    }
}

// ---------------------------------------------------------------------------
// R3: no-panic

const BANG_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

fn rule_no_panic(
    path: &str,
    lexed: &LexedFile,
    in_test: &[bool],
    allowed: &dyn Fn(&str, u32) -> bool,
    out: &mut Vec<Violation>,
) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        let found: Option<(String, &str)> = if t.kind == TokKind::Punct && t.text == "." {
            match toks.get(i + 1) {
                Some(n)
                    if n.kind == TokKind::Ident
                        && (n.text == "unwrap" || n.text == "expect")
                        && matches!(toks.get(i + 2), Some(p) if p.text == "(") =>
                {
                    Some((
                        format!(".{}()", n.text),
                        "return a typed `EngineError` (or restructure so the \
                         invariant is checked with `let … else` + \
                         `EngineError::Internal`)",
                    ))
                }
                _ => None,
            }
        } else if t.kind == TokKind::Ident
            && BANG_MACROS.contains(&t.text.as_str())
            && matches!(toks.get(i + 1), Some(p) if p.text == "!")
        {
            Some((
                format!("{}!", t.text),
                "propagate a typed `EngineError` instead of tearing down the \
                 worker at a schedule-dependent point",
            ))
        } else {
            None
        };
        let Some((what, fix)) = found else { continue };
        if allowed(config::NO_PANIC, t.line) {
            continue;
        }
        out.push(Violation {
            rule: config::NO_PANIC,
            path: path.to_string(),
            line: t.line,
            message: format!("`{what}` in an engine hot path"),
            suggestion: fix.to_string(),
        });
    }
}

// ---------------------------------------------------------------------------
// R4: kernel-doc

fn rule_kernel_doc(
    path: &str,
    lexed: &LexedFile,
    in_test: &[bool],
    allowed: &dyn Fn(&str, u32) -> bool,
    out: &mut Vec<Violation>,
) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if in_test[i] || t.kind != TokKind::Ident || t.text != "pub" {
            continue;
        }
        // `pub fn` only — `pub(crate) fn` etc. are internal API.
        let Some(next) = toks.get(i + 1) else {
            continue;
        };
        if next.text != "fn" {
            continue;
        }
        let Some(name_tok) = toks.get(i + 2) else {
            continue;
        };
        if allowed(config::KERNEL_DOC, t.line) {
            continue;
        }
        // Gather the doc block: contiguous doc comments ending directly
        // above the fn (attribute-only lines in between are fine).
        let doc = doc_block_above(lexed, toks, i, t.line);
        match doc {
            None => out.push(Violation {
                rule: config::KERNEL_DOC,
                path: path.to_string(),
                line: t.line,
                message: format!(
                    "`pub fn {}` in the kernel layer has no doc comment",
                    name_tok.text
                ),
                suggestion: "document which predicate classes \
                             (colocation / sequence / mixed Allen sets) the \
                             kernel is complete for"
                    .to_string(),
            }),
            Some(text) => {
                let lower = text.to_lowercase();
                let stated = config::PRECONDITION_KEYWORDS
                    .iter()
                    .any(|k| lower.contains(k));
                if !stated {
                    out.push(Violation {
                        rule: config::KERNEL_DOC,
                        path: path.to_string(),
                        line: t.line,
                        message: format!(
                            "doc comment of `pub fn {}` does not state its \
                             predicate-class precondition",
                            name_tok.text
                        ),
                        suggestion: "name the predicate classes the function \
                                     assumes (e.g. \"complete for any \
                                     single-attribute query\", \"colocation \
                                     condition sets only\")"
                            .to_string(),
                    });
                }
            }
        }
    }
}

/// The concatenated doc-comment text directly above the token at `tok_idx`
/// (line `fn_line`), tolerating attribute lines between doc and item.
fn doc_block_above(
    lexed: &LexedFile,
    toks: &[Token],
    tok_idx: usize,
    fn_line: u32,
) -> Option<String> {
    // Lines occupied by attributes directly above the fn: walk tokens
    // backward over balanced `#[ … ]` groups.
    // Kind-guarded comparisons throughout: string literals now carry their
    // contents as `text`, so a `"]"` literal must never look like a bracket.
    let punct = |t: &Token, ch: &str| t.kind == TokKind::Punct && t.text == ch;
    let mut first_line = fn_line;
    let mut j = tok_idx;
    while j >= 1 {
        if punct(&toks[j - 1], "]") {
            // Walk back to the matching `[` and its `#`.
            let mut depth = 0usize;
            let mut k = j - 1;
            loop {
                if punct(&toks[k], "]") {
                    depth += 1;
                } else if punct(&toks[k], "[") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if k == 0 {
                    return None;
                }
                k -= 1;
            }
            if k >= 1 && punct(&toks[k - 1], "#") {
                first_line = toks[k - 1].line;
                j = k - 1;
                continue;
            }
        }
        break;
    }
    // Contiguous doc comments whose run ends on the line above
    // `first_line`.
    let mut block: Vec<&str> = Vec::new();
    let mut expect_end = first_line - 1;
    for c in lexed.comments.iter().rev() {
        if c.end_line == expect_end && c.doc {
            block.push(&c.text);
            expect_end = c.line.saturating_sub(1);
        } else if c.end_line < first_line {
            break;
        }
    }
    if block.is_empty() {
        None
    } else {
        block.reverse();
        Some(block.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashmap_in_scope_is_flagged_and_marker_suppresses() {
        let src = "use std::collections::HashMap;\n\
                   // repolint: allow(unordered-iter): keys re-sorted below\n\
                   fn f(m: HashMap<u32, u32>) {}\n";
        let v = check_file("crates/core/src/x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 1);
        assert_eq!(v[0].rule, config::UNORDERED_ITER);
    }

    #[test]
    fn file_scope_marker_suppresses_everywhere() {
        let src = "// repolint: allow(unordered-iter, file): test scratch\n\
                   use std::collections::HashMap;\n\
                   fn f(m: HashMap<u32, u32>) {}\n";
        assert!(check_file("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn unjustified_marker_is_a_violation() {
        let src = "// repolint: allow(unordered-iter)\nfn f() {}\n";
        let v = check_file("crates/core/src/x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, config::BAD_MARKER);
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = "fn prod() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       use std::collections::HashMap;\n\
                       #[test]\n\
                       fn t() { let x: Option<u32> = None; x.unwrap(); panic!(); }\n\
                   }\n";
        assert!(check_file("crates/mapreduce/src/engine.rs", src).is_empty());
    }

    #[test]
    fn no_panic_catches_all_forms() {
        let src = "fn f(x: Option<u32>) {\n\
                       x.unwrap();\n\
                       x.expect(\"boom\");\n\
                       panic!(\"no\");\n\
                       unreachable!();\n\
                   }\n";
        let v = check_file("crates/mapreduce/src/engine.rs", src);
        let rules: Vec<_> = v.iter().map(|v| v.rule).collect();
        assert_eq!(v.len(), 4, "{v:?}");
        assert!(rules.iter().all(|r| *r == config::NO_PANIC));
        // unwrap_or / resume_unwind style idents never match.
        let ok = "fn g(x: Option<u32>) -> u32 { x.unwrap_or(4) }\n";
        assert!(check_file("crates/mapreduce/src/engine.rs", ok).is_empty());
    }

    #[test]
    fn wall_clock_flags_instant_and_thread_current() {
        let src = "use std::time::Instant;\n\
                   fn f() { let _ = std::thread::current().id(); }\n";
        let v = check_file("crates/query/src/q.rs", src);
        assert_eq!(v.len(), 2, "{v:?}");
        // The tracer is allowlisted by path.
        assert!(check_file("crates/mapreduce/src/trace.rs", src).is_empty());
    }

    #[test]
    fn kernel_doc_requires_precondition() {
        let undocumented = "pub fn join_it(x: u32) -> u32 { x }\n";
        let vague = "/// Joins a bucket.\npub fn join_it(x: u32) -> u32 { x }\n";
        let good = "/// Complete for any single-attribute query.\n\
                    #[inline]\n\
                    pub fn join_it(x: u32) -> u32 { x }\n";
        let path = "crates/core/src/kernel/mod.rs";
        assert_eq!(check_file(path, undocumented).len(), 1);
        assert_eq!(check_file(path, vague).len(), 1);
        assert!(check_file(path, good).is_empty());
        // Out of scope: same file content elsewhere passes.
        assert!(check_file("crates/core/src/cascade.rs", undocumented).is_empty());
    }

    #[test]
    fn spill_module_is_in_no_panic_scope() {
        let panicky = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let v = check_file("crates/mapreduce/src/spill.rs", panicky);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, config::NO_PANIC);
    }

    #[test]
    fn spill_module_is_in_wall_clock_scope_with_marker_escape() {
        let timed = "use std::time::Instant;\nfn g() {}\n";
        let v = check_file("crates/mapreduce/src/spill.rs", timed);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, config::WALL_CLOCK);
        // The real spill.rs justifies its I/O timers with exactly this
        // file-scope marker shape.
        let justified =
            "// repolint: allow(wall-clock, file): spill I/O timers only feed metrics\n\
             use std::time::Instant;\nfn g() {}\n";
        assert!(check_file("crates/mapreduce/src/spill.rs", justified).is_empty());
    }

    #[test]
    fn telemetry_wall_clock_is_allowed_only_in_clock_rs() {
        // The injectable-Clock contract: `Instant` is legal in the one
        // allowlisted clock module and nowhere else in telemetry/.
        let timed = "use std::time::Instant;\nfn now() {}\n";
        assert!(check_file("crates/mapreduce/src/telemetry/clock.rs", timed).is_empty());
        let v = check_file("crates/mapreduce/src/telemetry/mod.rs", timed);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, config::WALL_CLOCK);
        let v = check_file("crates/mapreduce/src/telemetry/recorder.rs", timed);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn telemetry_modules_are_in_no_panic_scope() {
        let panicky = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        for path in [
            "crates/mapreduce/src/telemetry/mod.rs",
            "crates/mapreduce/src/telemetry/hist.rs",
            "crates/mapreduce/src/telemetry/recorder.rs",
            "crates/mapreduce/src/telemetry/clock.rs",
        ] {
            let v = check_file(path, panicky);
            assert_eq!(v.len(), 1, "{path}: {v:?}");
            assert_eq!(v[0].rule, config::NO_PANIC, "{path}");
        }
        // Test modules inside telemetry stay exempt, like everywhere else.
        let test_only = "#[cfg(test)]\nmod tests {\n fn t(x: Option<u32>) { x.unwrap(); }\n}\n";
        assert!(check_file("crates/mapreduce/src/telemetry/hist.rs", test_only).is_empty());
    }

    #[test]
    fn pub_crate_fns_are_not_kernel_doc_targets() {
        let src = "pub(crate) fn helper(x: u32) -> u32 { x }\n";
        assert!(check_file("crates/core/src/kernel/mod.rs", src).is_empty());
    }
}
