//! Workspace walking: which files `repolint check` reads.
//!
//! The scan covers every `.rs` file under `<root>/crates/`, excluding
//! directories whose contents are test-only by construction —
//! `tests/`, `benches/`, `examples/` and `fixtures/` — mirroring the
//! rules' own `#[cfg(test)]` exemption (the invariants protect
//! production job output; test scaffolding may unwrap and hash freely).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names whose subtrees are skipped.
const SKIP_DIRS: &[&str] = &["tests", "benches", "examples", "fixtures", "target"];

/// Recursively collects the `.rs` files to lint under `root/crates`,
/// sorted by path for deterministic report order. Returned paths are
/// relative to `root`.
pub fn workspace_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut found = Vec::new();
    let crates = root.join("crates");
    walk(&crates, &mut found)?;
    for p in &mut found {
        if let Ok(rel) = p.strip_prefix(root) {
            *p = rel.to_path_buf();
        }
    }
    found.sort();
    Ok(found)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_crate_but_not_its_fixtures() {
        // CARGO_MANIFEST_DIR = crates/repolint; the workspace root is two
        // levels up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .expect("workspace root");
        let files = workspace_sources(&root).expect("scan");
        let as_str: Vec<String> = files
            .iter()
            .map(|p| p.to_string_lossy().replace('\\', "/"))
            .collect();
        assert!(as_str.iter().any(|p| p.ends_with("repolint/src/scan.rs")));
        assert!(as_str
            .iter()
            .any(|p| p.ends_with("mapreduce/src/engine.rs")));
        assert!(!as_str.iter().any(|p| p.contains("/fixtures/")));
        assert!(!as_str.iter().any(|p| p.contains("/tests/")));
    }
}
