//! Per-file symbol extraction: function definitions, call sites, panic
//! sites, lock acquisitions and string-literal uses, parsed from the
//! lexer's token stream.
//!
//! This is the front half of the cross-file analysis (`repolint graph`):
//! [`extract`] turns one [`LexedFile`] into a [`FileSymbols`] fact set,
//! and [`crate::callgraph`] stitches those into a workspace call graph.
//! `#[cfg(test)]` subtrees are excluded up front via the same brace
//! matcher the token rules use, so test scaffolding never contributes
//! nodes, edges or panic sites.
//!
//! The parser is heuristic by design (no full grammar — see DESIGN.md
//! §15 for the known false-negative classes):
//!
//! * `impl Type` / `impl Trait for Type` blocks qualify the functions
//!   they contain (`Type::name`), tracked by brace depth;
//! * a call site is an identifier followed by `(` (with turbofish
//!   `::<…>` skipped), classified as *method* (`.name(`), *qualified*
//!   (`Seg::name(`) or *plain* (`name(`);
//! * a panic site is `.unwrap(` / `.expect(`, a `panic!`-family macro,
//!   or an indexing expression `recv[...]` (a `[` directly after an
//!   identifier, `)` or `]` — attributes and array literals don't match);
//! * a lock acquisition is `.lock()` / `.read()` / `.write()` with empty
//!   parentheses (parking_lot style); its *live range* is computed from
//!   the binding form, and nested acquisitions or stream/Dfs I/O inside
//!   that range become [`LockIssue`]s.

use crate::lexer::{LexedFile, TokKind, Token};
use crate::rules::test_region_mask;

/// A call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Bare callee name (`run_job`, `inc`, …).
    pub callee: String,
    /// `Seg::name` for path-qualified calls (`Engine::new(…)`).
    pub qual: Option<String>,
    /// Whether this was a method call (`.name(…)`).
    pub method: bool,
    /// 1-based source line.
    pub line: u32,
}

/// A potential panic inside a function body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// Human-readable form: `.unwrap()`, `panic!`, `indexing ([...])`.
    pub what: String,
    /// 1-based source line.
    pub line: u32,
}

/// What a [`LockIssue`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockIssueKind {
    /// A second acquisition while another guard is live.
    Nested,
    /// A `ValueStream` pull or Dfs I/O call while a guard is live.
    AcrossIo,
}

/// A lock-discipline fact found in one function body.
#[derive(Debug, Clone)]
pub struct LockIssue {
    /// Which discipline was broken.
    pub kind: LockIssueKind,
    /// Line of the offending inner site.
    pub line: u32,
    /// Line of the outer acquisition whose guard was live.
    pub outer_line: u32,
    /// Detail for the report (method names involved).
    pub detail: String,
}

/// One function definition with everything the graph rules need.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Bare name.
    pub name: String,
    /// `Type::name` when defined inside an `impl` block.
    pub qual: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Call sites in the body.
    pub calls: Vec<CallSite>,
    /// Panic sites in the body.
    pub panics: Vec<PanicSite>,
    /// Lock-discipline issues in the body.
    pub lock_issues: Vec<LockIssue>,
}

impl FnDef {
    /// `Type::name` if qualified, else the bare name.
    pub fn display(&self) -> &str {
        self.qual.as_deref().unwrap_or(&self.name)
    }
}

/// A string literal in production (non-test) position.
#[derive(Debug, Clone)]
pub struct StrUse {
    /// The literal's contents.
    pub value: String,
    /// 1-based line.
    pub line: u32,
    /// `Some(method)` when the literal is the first argument of a
    /// metric-recording call (`.inc("…")`, `.record("…")`, …).
    pub record_call: Option<String>,
}

/// The extracted fact set for one source file.
#[derive(Debug, Clone)]
pub struct FileSymbols {
    /// Workspace-relative path.
    pub path: String,
    /// Crate name (the path segment after `crates/`).
    pub crate_name: String,
    /// Function definitions outside `#[cfg(test)]`.
    pub fns: Vec<FnDef>,
    /// Production string-literal uses (test regions excluded).
    pub str_uses: Vec<StrUse>,
}

/// Keywords that can precede `(` or `[` without being a call / indexing
/// receiver.
const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "break", "continue", "as", "in", "let", "mut",
    "ref", "move", "else", "unsafe", "async", "await", "dyn", "where", "impl", "fn", "pub", "use",
    "mod", "struct", "enum", "trait", "type", "const", "static", "crate", "super",
];

/// Macro names whose invocation is itself a panic site.
const BANG_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Lock-guard acquisition methods (empty-parens calls).
const LOCK_METHODS: &[&str] = &["lock", "read", "write"];

/// Methods that pull from a stream or perform Dfs I/O — forbidden while a
/// guard is live. `read`/`write`/`read_range` only count with a receiver
/// chain that mentions `dfs` (see [`receiver_mentions_dfs`]).
const STREAM_PULLS: &[&str] = &["next", "take_vec"];
const DFS_IO: &[&str] = &["read", "write", "read_range", "remove", "list"];

/// The crate-name segment of a workspace-relative path
/// (`crates/<name>/src/…` → `<name>`); empty when the path doesn't match.
pub fn crate_of(path: &str) -> String {
    let p = path.replace('\\', "/");
    match p.split_once("crates/") {
        Some((_, rest)) => rest.split('/').next().unwrap_or("").to_string(),
        None => String::new(),
    }
}

/// Extracts the symbol facts of one lexed file.
pub fn extract(path: &str, lexed: &LexedFile) -> FileSymbols {
    let toks = &lexed.tokens;
    let mask = test_region_mask(toks);
    let punct = |i: usize, ch: &str| {
        toks.get(i)
            .map(|t| t.kind == TokKind::Punct && t.text == ch)
            .unwrap_or(false)
    };
    let ident = |i: usize| {
        toks.get(i)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
    };

    let mut fns: Vec<FnDef> = Vec::new();
    let mut str_uses: Vec<StrUse> = Vec::new();

    // --- string-literal uses ------------------------------------------------
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Str || mask[i] {
            continue;
        }
        // `.inc("name", …)` → the literal directly follows `method` + `(`.
        let record_call = if i >= 3
            && punct(i - 1, "(")
            && punct(i - 3, ".")
            && matches!(
                ident(i - 2),
                Some("inc" | "record" | "inc_series" | "record_hist" | "get")
            ) {
            ident(i - 2).map(str::to_string)
        } else {
            None
        };
        str_uses.push(StrUse {
            value: t.text.clone(),
            line: t.line,
            record_call,
        });
    }

    // --- function definitions, with impl-block qualification ----------------
    let mut depth: i32 = 0;
    // (impl target type, brace depth of the impl body)
    let mut impl_stack: Vec<(String, i32)> = Vec::new();
    let mut pending_impl: Option<String> = None;
    let mut i = 0usize;
    while i < toks.len() {
        if punct(i, "{") {
            depth += 1;
            if let Some(target) = pending_impl.take() {
                impl_stack.push((target, depth));
            }
        } else if punct(i, "}") {
            if impl_stack.last().map(|(_, d)| *d) == Some(depth) {
                impl_stack.pop();
            }
            depth -= 1;
        } else if ident(i) == Some("impl") && !mask[i] {
            if let Some((target, after)) = parse_impl_target(toks, i + 1) {
                pending_impl = Some(target);
                i = after;
                continue;
            }
        } else if ident(i) == Some("fn") && !mask[i] {
            if let Some(name) = ident(i + 1) {
                let name = name.to_string();
                if let Some((b0, b1)) = fn_body_range(toks, i + 2) {
                    let qual = impl_stack.last().map(|(t, _)| format!("{}::{}", t, name));
                    fns.push(FnDef {
                        line: toks[i].line,
                        calls: body_calls(toks, b0, b1, &mask),
                        panics: body_panics(toks, b0, b1, &mask),
                        lock_issues: body_lock_issues(toks, b0, b1, &mask),
                        name,
                        qual,
                    });
                }
            }
        }
        i += 1;
    }

    FileSymbols {
        path: path.replace('\\', "/"),
        crate_name: crate_of(path),
        fns,
        str_uses,
    }
}

/// Parses the target type of an `impl` header starting at `i` (just past
/// the `impl` keyword): skips generics, takes the last path segment of
/// the implemented type (the one after `for`, if present). Returns the
/// target and the index of the token to resume scanning at (the header's
/// `{` — the caller's loop will push the impl scope there).
fn parse_impl_target(toks: &[Token], mut i: usize) -> Option<(String, usize)> {
    let punct = |i: usize, ch: &str| {
        toks.get(i)
            .map(|t| t.kind == TokKind::Punct && t.text == ch)
            .unwrap_or(false)
    };
    if punct(i, "<") {
        i = skip_angles(toks, i)?;
    }
    let mut last_seg: Option<String> = None;
    while let Some(t) = toks.get(i) {
        match (t.kind, t.text.as_str()) {
            (TokKind::Ident, "for") => {
                last_seg = None; // the *implemented-on* type wins
                i += 1;
            }
            (TokKind::Ident, "where") | (TokKind::Punct, "{") => break,
            (TokKind::Ident, seg) => {
                last_seg = Some(seg.to_string());
                i += 1;
            }
            (TokKind::Punct, "<") => i = skip_angles(toks, i)?,
            (TokKind::Punct, ":" | "&" | "'" | "*" | "(" | ")" | "," | "-" | ">") => i += 1,
            _ => break,
        }
    }
    last_seg.map(|t| (t, i))
}

/// Skips a balanced `<…>` starting at `i` (which holds `<`); `->` arrows
/// inside don't close the group. Returns the index just past the `>`.
fn skip_angles(toks: &[Token], mut i: usize) -> Option<usize> {
    let mut depth = 0usize;
    while let Some(t) = toks.get(i) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "<" => depth += 1,
                ">" => {
                    let arrow =
                        i >= 1 && toks[i - 1].kind == TokKind::Punct && toks[i - 1].text == "-";
                    if !arrow {
                        depth -= 1;
                        if depth == 0 {
                            return Some(i + 1);
                        }
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
    None
}

/// The token range (inclusive) of a fn body, scanning from just past the
/// fn name: the first `{` at paren/bracket depth 0 through its matching
/// `}`. `None` for bodyless trait declarations (`;` first).
fn fn_body_range(toks: &[Token], mut i: usize) -> Option<(usize, usize)> {
    let mut nest = 0i32;
    loop {
        let t = toks.get(i)?;
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => nest += 1,
                ")" | "]" => nest -= 1,
                ";" if nest == 0 => return None,
                "{" if nest == 0 => break,
                _ => {}
            }
        }
        i += 1;
    }
    let b0 = i;
    let mut depth = 0i32;
    while let Some(t) = toks.get(i) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some((b0, i));
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
    Some((b0, toks.len() - 1)) // unterminated: run to EOF, like the lexer
}

/// If the tokens at `i` form `::<…>(` or `(`, returns the index of the
/// `(`; call-site detection uses it to see through turbofish.
fn call_paren(toks: &[Token], i: usize) -> Option<usize> {
    let punct = |i: usize, ch: &str| {
        toks.get(i)
            .map(|t| t.kind == TokKind::Punct && t.text == ch)
            .unwrap_or(false)
    };
    if punct(i, "(") {
        return Some(i);
    }
    if punct(i, ":") && punct(i + 1, ":") && punct(i + 2, "<") {
        let after = skip_angles(toks, i + 2)?;
        if punct(after, "(") {
            return Some(after);
        }
    }
    None
}

fn body_calls(toks: &[Token], b0: usize, b1: usize, mask: &[bool]) -> Vec<CallSite> {
    let mut out = Vec::new();
    let punct = |i: usize, ch: &str| {
        toks.get(i)
            .map(|t| t.kind == TokKind::Punct && t.text == ch)
            .unwrap_or(false)
    };
    for i in b0..=b1.min(toks.len() - 1) {
        let t = &toks[i];
        if mask[i] || t.kind != TokKind::Ident || KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        if punct(i + 1, "!") {
            continue; // macro invocation, not a fn call
        }
        if i >= 1 && toks[i - 1].kind == TokKind::Ident && toks[i - 1].text == "fn" {
            continue; // a (nested) definition
        }
        if call_paren(toks, i + 1).is_none() {
            continue;
        }
        let method = i >= 1 && punct(i - 1, ".");
        let qual = if !method && i >= 3 && punct(i - 1, ":") && punct(i - 2, ":") {
            toks.get(i - 3)
                .filter(|s| s.kind == TokKind::Ident)
                .map(|s| format!("{}::{}", s.text, t.text))
        } else {
            None
        };
        out.push(CallSite {
            callee: t.text.clone(),
            qual,
            method,
            line: t.line,
        });
    }
    out
}

fn body_panics(toks: &[Token], b0: usize, b1: usize, mask: &[bool]) -> Vec<PanicSite> {
    let mut out = Vec::new();
    let punct = |i: usize, ch: &str| {
        toks.get(i)
            .map(|t| t.kind == TokKind::Punct && t.text == ch)
            .unwrap_or(false)
    };
    for i in b0..=b1.min(toks.len() - 1) {
        if mask[i] {
            continue;
        }
        let t = &toks[i];
        match t.kind {
            TokKind::Punct if t.text == "." => {
                if let Some(n) = toks.get(i + 1) {
                    if n.kind == TokKind::Ident
                        && (n.text == "unwrap" || n.text == "expect")
                        && punct(i + 2, "(")
                    {
                        out.push(PanicSite {
                            what: format!(".{}()", n.text),
                            line: n.line,
                        });
                    }
                }
            }
            TokKind::Ident if BANG_MACROS.contains(&t.text.as_str()) && punct(i + 1, "!") => {
                out.push(PanicSite {
                    what: format!("{}!", t.text),
                    line: t.line,
                });
            }
            TokKind::Punct if t.text == "[" && i >= 1 => {
                // Indexing: `recv[…]` where recv ends with an identifier,
                // `)` or `]`. Attributes (`#[`), macro bodies (`vec![`) and
                // array literals/types never match; keywords (`return [`)
                // are excluded explicitly.
                let p = &toks[i - 1];
                let indexing = match p.kind {
                    TokKind::Ident => !KEYWORDS.contains(&p.text.as_str()),
                    TokKind::Punct => p.text == ")" || p.text == "]",
                    _ => false,
                };
                if indexing {
                    out.push(PanicSite {
                        what: "indexing (`recv[…]`)".to_string(),
                        line: t.line,
                    });
                }
            }
            _ => {}
        }
    }
    out
}

/// Whether the receiver chain ending just before the `.` at `dot`
/// mentions a Dfs (identifier containing `dfs`, case-insensitive), looking
/// back a few tokens (`self.dfs.write(…)`, `dfs.read::<V>(…)`).
fn receiver_mentions_dfs(toks: &[Token], dot: usize) -> bool {
    let lo = dot.saturating_sub(4);
    toks[lo..dot]
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text.to_lowercase().contains("dfs"))
}

/// One lock acquisition with its computed guard live range.
struct Acquisition {
    method: String,
    line: u32,
    /// Token index of the `.`.
    at: usize,
    /// Last token index (inclusive) at which the guard is still live.
    end: usize,
}

fn body_lock_issues(toks: &[Token], b0: usize, b1: usize, mask: &[bool]) -> Vec<LockIssue> {
    let hi = b1.min(toks.len() - 1);
    let punct = |i: usize, ch: &str| {
        toks.get(i)
            .map(|t| t.kind == TokKind::Punct && t.text == ch)
            .unwrap_or(false)
    };

    // Pass 1: find acquisitions and their guard live ranges.
    let mut acqs: Vec<Acquisition> = Vec::new();
    for (i, &masked) in mask.iter().enumerate().take(hi + 1).skip(b0) {
        if masked || !punct(i, ".") {
            continue;
        }
        let Some(m) = toks.get(i + 1) else { continue };
        if m.kind != TokKind::Ident || !LOCK_METHODS.contains(&m.text.as_str()) {
            continue;
        }
        // Empty parens only: `.read("path")` is Dfs I/O, not a guard.
        if !(punct(i + 2, "(") && punct(i + 3, ")")) {
            continue;
        }
        // A guard is *held* only when the lock call's result is bound
        // directly (`let g = m.lock();`). `let v = m.lock().clone();`
        // binds the clone — the guard itself is a statement temporary.
        let let_bound = statement_starts_with_let(toks, b0, i) && punct(i + 4, ";");
        let end = guard_range_end(toks, i + 4, hi, let_bound);
        acqs.push(Acquisition {
            method: m.text.clone(),
            line: m.line,
            at: i,
            end,
        });
    }

    // Pass 2: nested acquisitions and I/O inside a live range.
    let mut out = Vec::new();
    for a in &acqs {
        for b in &acqs {
            if b.at > a.at && b.at <= a.end {
                out.push(LockIssue {
                    kind: LockIssueKind::Nested,
                    line: b.line,
                    outer_line: a.line,
                    detail: format!(
                        ".{}() acquired while the .{}() guard from line {} is live",
                        b.method, a.method, a.line
                    ),
                });
            }
        }
        let stop = a.end.min(hi);
        for (i, &masked) in mask.iter().enumerate().take(stop + 1).skip(a.at + 4) {
            if masked || !punct(i, ".") {
                continue;
            }
            let Some(m) = toks.get(i + 1) else { continue };
            if m.kind != TokKind::Ident {
                continue;
            }
            let name = m.text.as_str();
            let empty_parens = punct(i + 2, "(") && punct(i + 3, ")");
            let called = call_paren(toks, i + 2).is_some();
            let is_pull = STREAM_PULLS.contains(&name) && called;
            let is_dfs = DFS_IO.contains(&name)
                && called
                && !(empty_parens && LOCK_METHODS.contains(&name))
                && receiver_mentions_dfs(toks, i);
            if is_pull || is_dfs {
                out.push(LockIssue {
                    kind: LockIssueKind::AcrossIo,
                    line: m.line,
                    outer_line: a.line,
                    detail: format!(
                        ".{name}(…) while the .{}() guard from line {} is live",
                        a.method, a.line
                    ),
                });
            }
        }
    }
    out.sort_by_key(|i| (i.line, i.outer_line));
    out
}

/// Whether the statement containing token `i` starts with `let` (walking
/// back to the previous `;`, `{` or `}` inside the body).
fn statement_starts_with_let(toks: &[Token], b0: usize, i: usize) -> bool {
    let mut j = i;
    while j > b0 {
        let t = &toks[j - 1];
        if t.kind == TokKind::Punct && (t.text == ";" || t.text == "{" || t.text == "}") {
            break;
        }
        j -= 1;
    }
    toks.get(j)
        .map(|t| t.kind == TokKind::Ident && t.text == "let")
        .unwrap_or(false)
}

/// The last token index at which a guard acquired just before `from` is
/// still live. Let-bound guards live to the end of the enclosing block
/// (the `}` taking relative depth below zero); temporaries die at the
/// first `;` at relative depth 0 — or at that same `}`, so an
/// `if a.lock().x { … } else { … }` temporary never spans both arms.
fn guard_range_end(toks: &[Token], from: usize, hi: usize, let_bound: bool) -> usize {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().take(hi + 1).skip(from) {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth < 0 {
                    return i;
                }
            }
            ";" if depth == 0 && !let_bound => return i,
            _ => {}
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn sym(src: &str) -> FileSymbols {
        extract("crates/mapreduce/src/engine.rs", &lex(src))
    }

    #[test]
    fn fns_and_impl_quals_are_extracted() {
        let s = sym("impl Engine {\n\
                         pub fn run_job(&self) { helper(); self.step(); }\n\
                     }\n\
                     fn helper() {}\n\
                     impl Iterator for Stream {\n\
                         fn next(&mut self) -> Option<u8> { None }\n\
                     }\n");
        let names: Vec<&str> = s.fns.iter().map(|f| f.display()).collect();
        assert_eq!(names, vec!["Engine::run_job", "helper", "Stream::next"]);
        let run = &s.fns[0];
        assert_eq!(run.calls.len(), 2, "{:?}", run.calls);
        assert_eq!(run.calls[0].callee, "helper");
        assert!(!run.calls[0].method);
        assert!(run.calls[1].method);
    }

    #[test]
    fn qualified_calls_keep_their_segment() {
        let s = sym("fn f() { Engine::new(); std::mem::take(&mut x); }");
        let quals: Vec<Option<&str>> = s.fns[0].calls.iter().map(|c| c.qual.as_deref()).collect();
        assert_eq!(quals, vec![Some("Engine::new"), Some("mem::take")]);
    }

    #[test]
    fn panic_sites_cover_all_four_classes() {
        let s = sym("fn f(v: Vec<u8>, o: Option<u8>) {\n\
                         o.unwrap();\n\
                         o.expect(\"x\");\n\
                         panic!(\"y\");\n\
                         let _ = v[0];\n\
                     }");
        let whats: Vec<&str> = s.fns[0].panics.iter().map(|p| p.what.as_str()).collect();
        assert_eq!(whats.len(), 4, "{whats:?}");
        assert!(whats.contains(&".unwrap()"));
        assert!(whats.contains(&"panic!"));
        assert!(whats.iter().any(|w| w.starts_with("indexing")));
    }

    #[test]
    fn attributes_and_array_literals_are_not_indexing() {
        let s = sym("#[derive(Debug)]\n\
                     fn f() -> [u8; 2] { let a = [1u8, 2]; vec![3]; a }");
        assert!(s.fns[0].panics.is_empty(), "{:?}", s.fns[0].panics);
    }

    #[test]
    fn cfg_test_fns_are_invisible() {
        let s = sym("fn prod() {}\n\
                     #[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}");
        assert_eq!(s.fns.len(), 1);
        assert_eq!(s.fns[0].name, "prod");
    }

    #[test]
    fn turbofish_calls_are_still_calls() {
        let s = sym("fn f() { parse::<u32>(); it.collect::<Vec<_>>(); }");
        let names: Vec<&str> = s.fns[0].calls.iter().map(|c| c.callee.as_str()).collect();
        assert_eq!(names, vec!["parse", "collect"]);
    }

    #[test]
    fn recording_literals_are_tagged() {
        let s = sym("fn f(c: &Counters) { c.inc(\"spill.runs\", 1); let s = \"plain\"; }");
        assert_eq!(s.str_uses.len(), 2);
        assert_eq!(s.str_uses[0].value, "spill.runs");
        assert_eq!(s.str_uses[0].record_call.as_deref(), Some("inc"));
        assert!(s.str_uses[1].record_call.is_none());
    }

    #[test]
    fn nested_locks_are_detected() {
        let s = sym("fn f(&self) {\n\
                         let a = self.files.write();\n\
                         let b = self.stats.write();\n\
                     }");
        let issues = &s.fns[0].lock_issues;
        assert_eq!(issues.len(), 1, "{issues:?}");
        assert_eq!(issues[0].kind, LockIssueKind::Nested);
        assert_eq!(issues[0].line, 3);
        assert_eq!(issues[0].outer_line, 2);
    }

    #[test]
    fn scoped_guard_then_lock_is_clean() {
        let s = sym("fn f(&self) {\n\
                         { let a = self.files.write(); a.insert(1); }\n\
                         let b = self.stats.write();\n\
                     }");
        assert!(
            s.fns[0].lock_issues.is_empty(),
            "{:?}",
            s.fns[0].lock_issues
        );
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let s = sym("fn f(&self) {\n\
                         let v = self.slot.lock().clone();\n\
                         let b = self.stats.write();\n\
                     }");
        assert!(
            s.fns[0].lock_issues.is_empty(),
            "{:?}",
            s.fns[0].lock_issues
        );
    }

    #[test]
    fn lock_across_stream_pull_and_dfs_io_is_flagged() {
        let s = sym("fn f(&self) {\n\
                         let g = self.state.lock();\n\
                         let x = stream.next();\n\
                         self.dfs.write(\"p\", v);\n\
                         let r = dfs.read::<u64>(\"p\");\n\
                     }");
        let issues = &s.fns[0].lock_issues;
        let kinds: Vec<_> = issues.iter().map(|i| i.kind).collect();
        assert_eq!(kinds, vec![LockIssueKind::AcrossIo; 3], "{issues:?}");
    }

    #[test]
    fn dfs_style_read_without_dfs_receiver_is_not_io() {
        // `.read()` empty parens is a guard; `.read(buf)` on a non-dfs
        // receiver is out of the heuristic's reach (documented).
        let s = sym("fn f(&self) {\n\
                         let g = self.state.lock();\n\
                         socket.read(buf);\n\
                     }");
        assert!(
            s.fns[0].lock_issues.is_empty(),
            "{:?}",
            s.fns[0].lock_issues
        );
    }

    #[test]
    fn crate_names_come_from_the_path() {
        assert_eq!(crate_of("crates/mapreduce/src/engine.rs"), "mapreduce");
        assert_eq!(crate_of("crates/core/src/kernel/mod.rs"), "core");
        assert_eq!(crate_of("src/lib.rs"), "");
    }
}
