// Seeded fixture: the disciplined versions — scoped guards, I/O after
// release — must produce no violations.
pub fn sequential(&self) {
    {
        let files = self.files.write();
        files.touch();
    }
    let stats = self.stats.write();
    drop(stats);
}

pub fn io_after_release(&self, stream: &mut ValueStream) {
    let snapshot = self.state.lock().clone();
    let _ = stream.next();
    self.dfs.write("out/part-0", snapshot);
}
