// Seeded fixture: both lock-discipline violation shapes.
pub fn nested(&self) {
    let files = self.files.write();
    let stats = self.stats.write();
    drop((files, stats));
}

pub fn across_io(&self, stream: &mut ValueStream) {
    let guard = self.state.lock();
    let _ = stream.next();
    self.dfs.write("out/part-0", guard.clone());
}
