// Seeded fixture: a miniature metrics/names.rs registry.
pub const SPILL_RUNS: &str = "spill.runs";
pub const REDUCE_SERVICE_NS: &str = "reduce.service_ns";

pub fn is_execution_shape(name: &str) -> bool {
    name == SPILL_RUNS
}
