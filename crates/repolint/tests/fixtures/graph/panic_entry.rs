// Seeded fixture: the engine entry point. `run_job` reaches the panicking
// helper in `panic_helper.rs` across the file boundary — the token-level
// no-panic rule can't see that, the call-graph pass must.
pub struct Engine;

impl Engine {
    pub fn run_job(&self) -> u64 {
        let shaped = prepare(7);
        helper_chain(shaped)
    }
}

fn prepare(x: u64) -> u64 {
    x * 2
}

fn helper_chain(x: u64) -> u64 {
    crate::deeper(x)
}
