// Seeded fixture: a helper two hops from `Engine::run_job` that panics.
// Each panic class the rule must catch appears once.
pub fn deeper(x: u64) -> u64 {
    let v: Vec<u64> = vec![x];
    let first = v[0];
    let opt: Option<u64> = Some(first);
    opt.unwrap()
}

pub fn island(x: u64) -> u64 {
    // Unreachable from any entry point: must NOT be reported even though
    // it panics.
    assert_ne!(x, 0);
    panic!("island");
}
