// Seeded fixture: the same helper with justified allow-markers — the
// pass must honor them and report nothing.
pub fn deeper(x: u64) -> u64 {
    let v: Vec<u64> = vec![x];
    // repolint: allow(panic-propagation): v has exactly one element, built above
    let first = v[0];
    let opt: Option<u64> = Some(first);
    // repolint: allow(no-panic): opt is Some by construction
    opt.unwrap()
}
