// Seeded fixture: all three counter-registry violation shapes.
pub fn record(c: &Counters, h: &mut Hists) {
    // 1. Recording under a name the registry does not declare.
    c.inc("spill.rogue", 1);
    // 2. A literal duplicating a registered name instead of the constant.
    h.record("reduce.service_ns", 42);
}

// 3. An execution-shape classifier defined outside the registry module.
pub fn is_execution_shape_series(name: &str) -> bool {
    name.starts_with("spill.")
}
