//! Seeded violation fixture for rule `unordered-iter` (linted as if it
//! lived at `crates/core/src/bad.rs`). Not compiled — read as text by
//! the self-test.

use std::collections::HashMap;

pub fn leak_order(pairs: &[(u64, u64)]) -> Vec<u64> {
    let mut m: HashMap<u64, u64> = HashMap::new();
    for (k, v) in pairs {
        m.insert(*k, *v);
    }
    // Iteration order reaches the returned (emitted) vector.
    m.into_iter().map(|(_, v)| v).collect()
}

// A justified marker suppresses the rule on the next line:
// repolint: allow(unordered-iter): drained into a sort below
fn allowed_use(m: std::collections::HashSet<u64>) -> usize {
    m.len()
}
