//! Seeded violation fixture for rule `wall-clock` (linted as if it lived
//! at `crates/core/src/bad.rs`). Not compiled — read as text by the
//! self-test.

use std::time::{Instant, SystemTime};

pub fn stamp_output(out: &mut Vec<String>) {
    // Wall-clock readings written into job output: the canonical breach.
    let t0 = Instant::now();
    out.push(format!("{:?} {:?}", t0.elapsed(), SystemTime::now()));
    // Thread identity leaking into output keys:
    out.push(format!("{:?}", std::thread::current().id()));
}
