//! Seeded violation fixture for rule `wall-clock` scoped to the spill
//! module (linted as if it lived at `crates/mapreduce/src/spill.rs`,
//! but WITHOUT the real module's file-scope allow-marker). Not
//! compiled — read as text by the self-test.

use std::time::Instant;

pub fn spill_run_timed(bytes: &[u8]) -> u64 {
    // Unjustified timing in the spill path: the real spill.rs carries a
    // file-scope allow-marker because its timers only feed
    // JobMetrics::spill_wall; without that marker this must be flagged.
    let t0 = Instant::now();
    let _ = bytes.len();
    t0.elapsed().as_nanos() as u64
}
