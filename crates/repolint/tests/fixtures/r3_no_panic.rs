//! Seeded violation fixture for rule `no-panic` (linted as if it lived
//! at `crates/mapreduce/src/engine.rs`). Not compiled — read as text by
//! the self-test.

pub fn hot_path(bucket: Option<Vec<u64>>) -> Vec<u64> {
    // Panicking mid-reduce tears down workers at a schedule-dependent
    // point — exactly what the typed EngineError contract forbids.
    let vals = bucket.unwrap();
    if vals.is_empty() {
        panic!("empty bucket");
    }
    vals
}

pub fn also_hot(slot: Option<u64>) -> u64 {
    slot.expect("reducer left no result")
}

#[cfg(test)]
mod tests {
    // Test code is exempt: this unwrap must NOT be reported.
    #[test]
    fn fine_here() {
        let x: Option<u32> = Some(1);
        x.unwrap();
    }
}
