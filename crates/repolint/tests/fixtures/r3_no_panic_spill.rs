//! Seeded violation fixture for rule `no-panic` scoped to the spill
//! module (linted as if it lived at `crates/mapreduce/src/spill.rs`).
//! Not compiled — read as text by the self-test.

pub fn write_run(values: Option<Vec<u64>>) -> usize {
    // A panicking spill write would tear down a reduce worker mid-job;
    // the spill path must surface Dfs failures as typed errors instead.
    let vals = values.unwrap();
    if vals.is_empty() {
        panic!("empty spill run");
    }
    vals.len()
}

pub fn read_chunk(chunk: Option<Vec<u64>>) -> Vec<u64> {
    chunk.expect("spill run missing from the Dfs")
}

#[cfg(test)]
mod tests {
    // Test code is exempt: this unwrap must NOT be reported.
    #[test]
    fn fine_here() {
        let x: Option<u32> = Some(1);
        x.unwrap();
    }
}
