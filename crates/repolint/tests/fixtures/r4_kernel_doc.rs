//! Seeded violation fixture for rule `kernel-doc` (linted as if it lived
//! at `crates/core/src/kernel/bad.rs`). Not compiled — read as text by
//! the self-test.

/// Joins the bucket quickly. (Vague: states no assumptions at all.)
pub fn undocumented_precondition(x: u64) -> u64 {
    x
}

pub fn no_doc_at_all(x: u64) -> u64 {
    x
}

/// Complete for any single-attribute query; sequence condition sets fall
/// back to the windowed kernel.
#[inline]
pub fn properly_documented(x: u64) -> u64 {
    x
}

// Internal helpers are out of scope:
pub(crate) fn helper(x: u64) -> u64 {
    x
}
