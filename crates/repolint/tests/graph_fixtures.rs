//! Seeded-fixture proof that each `repolint graph` rule family detects
//! its violation class — and that allow-markers and clean rewrites
//! silence it. The fixtures live under `tests/fixtures/graph/` (excluded
//! from the workspace scan) and are presented to the analyzer under
//! synthetic workspace paths.

use repolint::graph::analyze;
use repolint::rules::Violation;

fn run(files: &[(&str, &str)]) -> Vec<Violation> {
    let owned: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    analyze(&owned)
}

const PANIC_ENTRY: &str = include_str!("fixtures/graph/panic_entry.rs");
const PANIC_HELPER: &str = include_str!("fixtures/graph/panic_helper.rs");
const PANIC_HELPER_MARKED: &str = include_str!("fixtures/graph/panic_helper_marked.rs");
const NAMES_FIXTURE: &str = include_str!("fixtures/graph/names_fixture.rs");
const REGISTRY_DRIFT: &str = include_str!("fixtures/graph/registry_drift.rs");
const LOCK_NESTED: &str = include_str!("fixtures/graph/lock_nested.rs");
const LOCK_CLEAN: &str = include_str!("fixtures/graph/lock_clean.rs");

#[test]
fn panic_propagation_crosses_file_boundaries() {
    let v = run(&[
        ("crates/mapreduce/src/engine.rs", PANIC_ENTRY),
        ("crates/mapreduce/src/job.rs", PANIC_HELPER),
    ]);
    let pp: Vec<&Violation> = v.iter().filter(|v| v.rule == "panic-propagation").collect();
    // `deeper` has an indexing site and an unwrap; `island` panics but is
    // unreachable and must not appear.
    assert_eq!(pp.len(), 2, "{pp:?}");
    assert!(pp.iter().all(|v| v.path == "crates/mapreduce/src/job.rs"));
    assert!(
        pp.iter().all(|v| v
            .message
            .contains("Engine::run_job → helper_chain → deeper")),
        "{pp:?}"
    );
    assert!(!v.iter().any(|v| v.message.contains("island")), "{v:?}");
}

#[test]
fn panic_propagation_markers_suppress_both_spellings() {
    // One site is marked allow(panic-propagation), the other relies on an
    // existing allow(no-panic) marker — both must count.
    let v = run(&[
        ("crates/mapreduce/src/engine.rs", PANIC_ENTRY),
        ("crates/mapreduce/src/job.rs", PANIC_HELPER_MARKED),
    ]);
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn counter_registry_detects_all_three_drift_shapes() {
    let v = run(&[
        ("crates/mapreduce/src/metrics/names.rs", NAMES_FIXTURE),
        ("crates/mapreduce/src/metrics.rs", REGISTRY_DRIFT),
    ]);
    let cr: Vec<&Violation> = v.iter().filter(|v| v.rule == "counter-registry").collect();
    assert_eq!(cr.len(), 3, "{cr:?}");
    assert!(cr.iter().any(|v| v.message.contains("spill.rogue")));
    assert!(cr
        .iter()
        .any(|v| v.message.contains("names::REDUCE_SERVICE_NS")));
    assert!(cr
        .iter()
        .any(|v| v.message.contains("is_execution_shape_series")));
}

#[test]
fn registry_module_itself_is_exempt() {
    // The registry declares the literals; it must not be reported for
    // containing them, and its in-registry classifier is legal.
    let v = run(&[("crates/mapreduce/src/metrics/names.rs", NAMES_FIXTURE)]);
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn lock_discipline_flags_nested_and_across_io() {
    let v = run(&[("crates/mapreduce/src/dfs.rs", LOCK_NESTED)]);
    let ld: Vec<&Violation> = v.iter().filter(|v| v.rule == "lock-discipline").collect();
    assert_eq!(ld.len(), 3, "{ld:?}");
    assert!(ld.iter().any(|v| v.message.contains("nested lock")));
    assert!(ld
        .iter()
        .any(|v| v.message.contains("lock held across stream/Dfs I/O")));
}

#[test]
fn disciplined_locking_is_clean() {
    let v = run(&[("crates/mapreduce/src/dfs.rs", LOCK_CLEAN)]);
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn suggestions_name_the_mechanical_fix() {
    let v = run(&[
        ("crates/mapreduce/src/metrics/names.rs", NAMES_FIXTURE),
        ("crates/mapreduce/src/metrics.rs", REGISTRY_DRIFT),
    ]);
    assert!(
        v.iter()
            .any(|v| v.suggestion.contains("names::REDUCE_SERVICE_NS")),
        "{v:?}"
    );
}
