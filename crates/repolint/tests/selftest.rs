//! Self-tests: each seeded violation fixture trips exactly its rule, and
//! the real workspace is clean.

use repolint::rules::check_file;
use repolint::{config, report};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"))
}

#[test]
fn r1_fixture_trips_unordered_iter() {
    let v = check_file("crates/core/src/bad.rs", &fixture("r1_unordered_iter.rs"));
    let hits: Vec<_> = v
        .iter()
        .filter(|v| v.rule == config::UNORDERED_ITER)
        .collect();
    // Two HashMap mentions (use + two in the fn) are flagged; the
    // marker-covered HashSet is not.
    assert!(hits.len() >= 2, "{v:?}");
    assert!(v.iter().all(|v| v.rule == config::UNORDERED_ITER), "{v:?}");
    assert!(!v.iter().any(|v| v.message.contains("HashSet")), "{v:?}");
}

#[test]
fn r2_fixture_trips_wall_clock() {
    let v = check_file("crates/core/src/bad.rs", &fixture("r2_wall_clock.rs"));
    assert!(!v.is_empty());
    assert!(v.iter().all(|v| v.rule == config::WALL_CLOCK), "{v:?}");
    let msgs: String = v.iter().map(|v| v.message.as_str()).collect();
    assert!(msgs.contains("Instant"));
    assert!(msgs.contains("SystemTime"));
    assert!(msgs.contains("thread::current"));
    // The same source is fine in an allowlisted location.
    let allow = check_file("crates/bench/src/bad.rs", &fixture("r2_wall_clock.rs"));
    assert!(allow.is_empty(), "{allow:?}");
}

#[test]
fn r3_fixture_trips_no_panic_outside_tests_only() {
    let v = check_file("crates/mapreduce/src/engine.rs", &fixture("r3_no_panic.rs"));
    assert_eq!(v.len(), 3, "{v:?}"); // unwrap, panic!, expect — not the test unwrap
    assert!(v.iter().all(|v| v.rule == config::NO_PANIC));
}

#[test]
fn r4_fixture_trips_kernel_doc() {
    let v = check_file(
        "crates/core/src/kernel/bad.rs",
        &fixture("r4_kernel_doc.rs"),
    );
    assert_eq!(v.len(), 2, "{v:?}"); // vague doc + missing doc
    assert!(v.iter().all(|v| v.rule == config::KERNEL_DOC));
    let msgs: String = v.iter().map(|v| v.message.as_str()).collect();
    assert!(msgs.contains("undocumented_precondition"));
    assert!(msgs.contains("no_doc_at_all"));
    assert!(!msgs.contains("properly_documented"));
    assert!(!msgs.contains("helper"));
}

#[test]
fn r3_spill_fixture_trips_no_panic_in_spill_scope() {
    let v = check_file(
        "crates/mapreduce/src/spill.rs",
        &fixture("r3_no_panic_spill.rs"),
    );
    assert_eq!(v.len(), 3, "{v:?}"); // unwrap, panic!, expect — not the test unwrap
    assert!(v.iter().all(|v| v.rule == config::NO_PANIC));
    // The same source outside the no-panic scope passes.
    let elsewhere = check_file(
        "crates/mapreduce/src/metrics.rs",
        &fixture("r3_no_panic_spill.rs"),
    );
    assert!(elsewhere.is_empty(), "{elsewhere:?}");
}

#[test]
fn r2_spill_fixture_trips_wall_clock_without_the_real_marker() {
    let v = check_file(
        "crates/mapreduce/src/spill.rs",
        &fixture("r2_wall_clock_spill.rs"),
    );
    assert!(!v.is_empty());
    assert!(v.iter().all(|v| v.rule == config::WALL_CLOCK), "{v:?}");
    let msgs: String = v.iter().map(|v| v.message.as_str()).collect();
    assert!(msgs.contains("Instant"));
}

#[test]
fn fixtures_render_to_json() {
    let v = check_file("crates/mapreduce/src/engine.rs", &fixture("r3_no_panic.rs"));
    let json = report::to_json(&v, 1);
    assert!(json.contains("\"rule\": \"no-panic\""));
    assert!(json.contains("\"violation_count\": 3"));
}

#[test]
fn workspace_check_is_clean_end_to_end() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let (violations, scanned) = repolint::check_workspace(&root).expect("scan");
    assert!(
        violations.is_empty(),
        "workspace must lint clean:\n{}",
        report::to_text(&violations, scanned, true)
    );
}
