//! The paper's real-data scenario: Internet packet traces (Section 6.2).
//!
//! Simulates a MAWI-like backbone trace, constructs packet trains with the
//! paper's 500 ms inter-arrival cutoff, and runs Table 2's star self-join
//! `R overlaps R and R overlaps R` — "all triples {T1, T2, T3} such that
//! train T1 overlaps with T2 and T2 overlaps with T3" — with RCCIS.
//!
//! ```sh
//! cargo run --release --example network
//! ```

use interval_joins_mr::datagen::profiles::TraceProfile;
use interval_joins_mr::datagen::trains::{trains_relation, PAPER_CUTOFF_US};
use interval_joins_mr::datagen::PacketStreamGen;
use interval_joins_mr::join::rccis::Rccis;
use interval_joins_mr::prelude::*;
use std::sync::Arc;

fn main() {
    // A laptop-sized slice of the P04 profile (the paper's smallest trace).
    let profile = TraceProfile::by_name("P04").unwrap();
    let cfg = profile.stream_config(0.05, 42);
    println!(
        "simulating trace {} at 5% scale: {} flows over {} s",
        profile.name,
        cfg.n_flows,
        cfg.duration_us / 1_000_000
    );
    let packets = PacketStreamGen::new(cfg).generate();
    println!("captured {} packets", packets.len());

    let trains = interval_joins_mr::datagen::trains_from_packets(&packets, PAPER_CUTOFF_US);
    let total_pkts: u64 = trains.iter().map(|t| t.packets as u64).sum();
    println!(
        "constructed {} packet trains (cutoff 500 ms, avg {:.1} pkts/train)",
        trains.len(),
        total_pkts as f64 / trains.len() as f64
    );

    // Star self-join: the same relation bound to all three logical slots.
    let query = parse_query("T1 overlaps T2 and T2 overlaps T3").unwrap();
    let rel = Arc::new(trains_relation("trains", &trains));
    let input = JoinInput::bind_self_join(&query, rel).unwrap();

    let engine = Engine::new(ClusterConfig::with_slots(16));
    let out = Rccis::new(16).run(&query, &input, &engine).unwrap();

    println!(
        "\noverlapping train triples: {} (from {} trains)",
        out.count,
        trains.len()
    );
    for t in out.sorted_tuples().iter().take(5) {
        println!(
            "  T1 {}  ov  T2 {}  ov  T3 {}",
            input.relation(RelId(0)).tuple(t[0]).interval(),
            input.relation(RelId(1)).tuple(t[1]).interval(),
            input.relation(RelId(2)).tuple(t[2]).interval(),
        );
    }
    println!(
        "\nRCCIS replicated {} of {} shuffled intervals across {} cycles",
        out.stats.replicated_intervals.unwrap_or(0),
        input.total_tuples(),
        out.chain.num_cycles()
    );
}
