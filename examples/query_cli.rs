//! Ad-hoc query runner: parse a query from the command line, generate
//! synthetic data for its relations, plan and execute it.
//!
//! ```sh
//! cargo run --release --example query_cli -- "R1 overlaps R2 and R2 before R3"
//! cargo run --release --example query_cli -- "A.I contains B.I and A.k = B.k" 2000
//! ```
//!
//! Optional second argument: tuples per relation (default 1000).

use interval_joins_mr::datagen::{Distribution, SynthConfig};
use interval_joins_mr::join::estimate::auto_tune;
use interval_joins_mr::join::plan;
use interval_joins_mr::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut args = std::env::args().skip(1);
    let text = args.next().unwrap_or_else(|| {
        eprintln!("usage: query_cli \"<query>\" [tuples-per-relation]");
        std::process::exit(2);
    });
    let n: usize = args
        .next()
        .map(|s| s.parse().expect("tuple count"))
        .unwrap_or(1000);

    let query = match parse_query(&text) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("cannot parse query: {e}");
            std::process::exit(2);
        }
    };
    println!("query: {query}");
    println!(
        "class: {}   components: {}",
        query.class(),
        query.components().len()
    );
    if query.start_order().contradictory() {
        println!("note: the query's orders are contradictory — output will be empty");
    }

    // Synthetic data: interval attributes from the Table 1 generator,
    // real-valued attributes (anything named without intervals joining on
    // equals) from a small uniform domain.
    let mut rng = StdRng::seed_from_u64(1);
    let relations: Vec<Relation> = query
        .relations()
        .iter()
        .enumerate()
        .map(|(r, meta)| {
            let base = SynthConfig {
                n,
                ds: Distribution::Uniform,
                di: Distribution::Uniform,
                t_min: 0,
                t_max: 10_000,
                i_min: 1,
                i_max: 200,
                seed: 100 + r as u64,
            }
            .generate(meta.name.clone());
            if meta.attr_names.len() == 1 {
                base
            } else {
                // Widen with extra attributes: alternate interval / point.
                Relation::from_rows(
                    meta.name.clone(),
                    base.tuples().iter().map(|t| {
                        let mut attrs = vec![t.interval()];
                        for _ in 1..meta.attr_names.len() {
                            attrs.push(Interval::point(rng.gen_range(0..50)));
                        }
                        attrs
                    }),
                )
            }
        })
        .collect();
    let input = JoinInput::bind_owned(&query, relations).expect("generated data fits query");

    let engine = Engine::new(ClusterConfig::with_slots(16));
    // Pick partition counts so the consistent reducers track the slots.
    let mut cfg = auto_tune(&query, 16);
    cfg.mode = OutputMode::Count;
    let alg = plan(&query, cfg);
    println!(
        "algorithm: {} (partitions={}, per_dim={})\n",
        alg.name(),
        cfg.partitions,
        cfg.per_dim
    );
    let start = std::time::Instant::now();
    let out = alg
        .run(&query, &input, &engine)
        .expect("planner picks a supported algorithm");

    println!("output tuples: {}", out.count);
    println!("wall time:     {:.3}s", start.elapsed().as_secs_f64());
    println!("MR cycles:     {}", out.chain.num_cycles());
    for c in &out.chain.cycles {
        println!(
            "  {:<16} pairs={:<9} reducers={:<5} skew={:.2} simulated={:.0}",
            c.name,
            c.intermediate_pairs,
            c.distinct_reducers,
            c.skew(),
            c.simulated
        );
    }
    if let Some((used, total)) = out.stats.consistent_cells {
        println!("consistent reducers: {used} of {total}");
    }
    if let Some(r) = out.stats.replicated_intervals {
        println!("replicated intervals: {r}");
    }
}
