//! Quickstart: parse a query, bind data, run the planner-chosen algorithm.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use interval_joins_mr::prelude::*;

fn main() {
    // A three-way colocation query in the paper's notation.
    let query = parse_query("R1 overlaps R2 and R2 contains R3").expect("valid query");
    println!("query:  {query}   (class: {})", query.class());

    // Bind one relation of intervals per logical relation. Intervals are
    // closed ranges [start, end] over i64 time points.
    let iv = |s, e| Interval::new(s, e).unwrap();
    let input = JoinInput::bind_owned(
        &query,
        vec![
            Relation::from_intervals("R1", vec![iv(0, 40), iv(10, 25), iv(70, 90)]),
            Relation::from_intervals("R2", vec![iv(15, 60), iv(75, 95)]),
            Relation::from_intervals("R3", vec![iv(20, 50), iv(80, 85), iv(96, 99)]),
        ],
    )
    .expect("arity matches query");

    // A simulated 16-slot cluster, like the paper's.
    let engine = Engine::new(ClusterConfig::with_slots(16));

    // Let the planner pick the paper's algorithm for this query class
    // (RCCIS for multi-way colocation joins) and run it.
    let algorithm = interval_joins_mr::join::plan(
        &query,
        interval_joins_mr::join::PlanConfig {
            partitions: 4,
            ..Default::default()
        },
    );
    println!("algorithm: {}", algorithm.name());
    let out = algorithm
        .run(&query, &input, &engine)
        .expect("supported query");

    println!("\noutput tuples ({}):", out.count);
    for t in out.sorted_tuples() {
        let rendered: Vec<String> = t
            .iter()
            .enumerate()
            .map(|(r, &tid)| {
                format!(
                    "R{}[{}]={}",
                    r + 1,
                    tid,
                    input.relation(RelId(r as u16)).tuple(tid).interval()
                )
            })
            .collect();
        println!("  {}", rendered.join("  "));
    }

    println!("\nMapReduce cycles: {}", out.chain.num_cycles());
    for c in &out.chain.cycles {
        println!(
            "  {:<12} pairs={:<6} reducers={:<3} simulated={:.0}",
            c.name, c.intermediate_pairs, c.distinct_reducers, c.simulated
        );
    }
    println!(
        "intervals replicated by RCCIS: {:?}",
        out.stats.replicated_intervals
    );
}
