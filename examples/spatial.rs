//! The paper's spatial-join scenario (Sections 1 and 9).
//!
//! > "Consider spatial data describing cities, rivers etc and the query —
//! > 'Find all cities overlapping with a river' … reduces to an interval
//! > join query — select city from cities, river from rivers where
//! > city.length overlaps river.length and city.breadth overlaps
//! > river.breadth."
//!
//! Rectangles are pairs of intervals (x-extent, y-extent); the query is a
//! two-attribute General query handled by Gen-Matrix. The paper's
//! formulation uses Allen's *overlaps*; since a conjunction of single
//! Allen predicates cannot express full rectangle intersection (that is a
//! disjunction per axis), this example asks for cities *straddling* a
//! river: containment on each axis.
//!
//! ```sh
//! cargo run --release --example spatial
//! ```

use interval_joins_mr::join::gen_matrix::GenMatrix;
use interval_joins_mr::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(3);
    let world = 10_000i64;

    // Cities: boxes up to 120 x 120.
    let cities = Relation::from_rows(
        "cities",
        (0..800).map(|_| {
            let x = rng.gen_range(0..world - 200);
            let y = rng.gen_range(0..world - 200);
            vec![
                Interval::new(x, x + rng.gen_range(20..120)).unwrap(),
                Interval::new(y, y + rng.gen_range(20..120)).unwrap(),
            ]
        }),
    );
    // Rivers: long thin boxes.
    let rivers = Relation::from_rows(
        "rivers",
        (0..60).map(|_| {
            let x = rng.gen_range(0..world - 3000);
            let y = rng.gen_range(0..world - 60);
            vec![
                Interval::new(x, x + rng.gen_range(1000..3000)).unwrap(),
                Interval::new(y, y + rng.gen_range(10..60)).unwrap(),
            ]
        }),
    );

    // The city straddles the river: the city's x-extent lies within the
    // river's long x-span, and the river's thin y-band cuts through the
    // city's y-extent.
    let query = parse_query("cities.x during rivers.x and rivers.y during cities.y").unwrap();
    println!("query: {query}   (class: {})", query.class());
    println!(
        "components: {} (each axis is its own colocation component)",
        query.components().len()
    );

    let input = JoinInput::bind_owned(&query, vec![cities, rivers]).unwrap();
    let engine = Engine::new(ClusterConfig::with_slots(16));
    let alg = GenMatrix::new(5);
    let out = alg.run(&query, &input, &engine).unwrap();

    println!("\ncity-river overlaps found: {}", out.count);
    for t in out.sorted_tuples().iter().take(8) {
        let c = input.relation(RelId(0)).tuple(t[0]);
        let r = input.relation(RelId(1)).tuple(t[1]);
        println!(
            "  city #{:<3} x={} y={}   river #{:<2} x={} y={}",
            t[0],
            c.attr(0),
            c.attr(1),
            t[1],
            r.attr(0),
            r.attr(1)
        );
    }
    let (used, total) = out.stats.consistent_cells.unwrap();
    println!(
        "\nGen-Matrix used {used} of {total} reducer cells across {} cycles",
        out.chain.num_cycles()
    );
}
