//! Trace demo: run a 3-way RCCIS join with tracing enabled and dump a
//! Chrome trace-event file of the whole chain (marking + join cycles,
//! their map/shuffle/reduce phases, per-worker tasks, and per-reducer
//! invocations).
//!
//! ```sh
//! cargo run --release --example trace_demo [out.json]
//! ```
//!
//! Open the resulting file in `chrome://tracing` or
//! <https://ui.perfetto.dev> to see where time goes and how reduce work
//! spreads over the 16 simulated slots.

use interval_joins_mr::datagen::SynthConfig;
use interval_joins_mr::interval::AllenPredicate::Overlaps;
use interval_joins_mr::join::rccis::Rccis;
use interval_joins_mr::join::{Algorithm, JoinInput, OutputMode};
use interval_joins_mr::mapreduce::{ClusterConfig, Engine, Tracer};
use interval_joins_mr::query::JoinQuery;
use std::sync::Arc;

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "trace_demo.json".to_string());

    // The paper's colocation query Q1: R1 overlaps R2 and R2 overlaps R3.
    let query = JoinQuery::chain(&[Overlaps, Overlaps]).unwrap();
    let rels = (0..3)
        .map(|r| SynthConfig::table1(20_000, 42 + r).generate(format!("R{}", r + 1)))
        .collect();
    let input = JoinInput::bind_owned(&query, rels).unwrap();

    // A simulated 16-slot cluster with a tracer attached.
    let tracer = Arc::new(Tracer::new());
    let engine = Engine::new(ClusterConfig::with_slots(16)).with_tracer(tracer.clone());

    let rccis = Rccis {
        partitions: 16,
        mode: OutputMode::Count,
        mark_options: Default::default(),
        partition_strategy: Default::default(),
    };
    let out = rccis.run(&query, &input, &engine).expect("supported query");
    println!(
        "RCCIS joined 3 x 20,000 intervals: {} output tuples over {} MR cycles",
        out.count,
        out.chain.num_cycles()
    );

    // Hadoop-style user counters, merged across both cycles.
    println!("\ncounters:");
    for (name, value) in out.chain.total_counters().iter() {
        println!("  {name:<28} {value}");
    }

    // Per-reducer load of the final join cycle.
    let join_cycle = out.chain.cycles.last().unwrap();
    let skew = join_cycle.skew_report(3);
    println!(
        "\njoin-cycle skew: {} reducers, max/mean {:.2}, p99/p50 {:.2}, gini {:.3}",
        skew.reducers, skew.max_mean_ratio, skew.p99_p50_ratio, skew.gini
    );

    tracer
        .write_chrome_trace(&path)
        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!(
        "\nwrote {path}: {} spans — open in chrome://tracing or ui.perfetto.dev",
        tracer.len()
    );
}
