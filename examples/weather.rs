//! The paper's introductory scenario: spatio-temporal environment
//! modeling.
//!
//! > "Find all intervals u1, u2 and u3 such that high wind speed, high
//! > temperature and high concentration of a pollutant were observed during
//! > intervals u1, u2 and u3 respectively and the intervals u2 and u3 are
//! > contained within interval u1."
//!
//! We simulate three sensor time series, extract the threshold-exceedance
//! intervals, and run the containment query with RCCIS.
//!
//! ```sh
//! cargo run --release --example weather
//! ```

use interval_joins_mr::interval::set::runs_where;
use interval_joins_mr::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Extracts maximal intervals where the series exceeds `threshold`.
/// One sample per tick; interval endpoints are tick indices.
fn exceedance_intervals(series: &[f64], threshold: f64) -> Vec<Interval> {
    runs_where(series.len(), |t| series[t] > threshold)
}

/// A smooth random walk with occasional surges — a crude weather signal.
/// `surge_prob` controls how often surges begin, `magnitude` their size and
/// `decay` how slowly they fade (larger = longer episodes).
fn simulate_series(
    rng: &mut StdRng,
    len: usize,
    surge_prob: f64,
    magnitude: f64,
    decay: f64,
) -> Vec<f64> {
    let mut v = 0.0f64;
    let mut surge = 0.0f64;
    (0..len)
        .map(|_| {
            v = 0.95 * v + rng.gen_range(-1.0..1.0);
            if rng.gen_bool(surge_prob) {
                surge = rng.gen_range(magnitude..2.0 * magnitude);
            }
            surge *= decay;
            v + surge
        })
        .collect()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let ticks = 5_000;

    // Wind surges are long-lived; temperature and pollutant spikes are
    // frequent and short, so some fall entirely inside wind episodes.
    let wind = simulate_series(&mut rng, ticks, 0.002, 12.0, 0.995);
    let temperature = simulate_series(&mut rng, ticks, 0.02, 10.0, 0.9);
    let pollutant = simulate_series(&mut rng, ticks, 0.02, 10.0, 0.9);

    let wind_iv = exceedance_intervals(&wind, 6.0);
    let temp_iv = exceedance_intervals(&temperature, 7.0);
    let poll_iv = exceedance_intervals(&pollutant, 7.0);
    println!(
        "episodes: wind={} temperature={} pollutant={}",
        wind_iv.len(),
        temp_iv.len(),
        poll_iv.len()
    );

    // wind contains temperature and wind contains pollutant.
    let query = parse_query("wind contains temp and wind contains pollutant").unwrap();
    let input = JoinInput::bind_owned(
        &query,
        vec![
            Relation::from_intervals("wind", wind_iv),
            Relation::from_intervals("temp", temp_iv),
            Relation::from_intervals("pollutant", poll_iv),
        ],
    )
    .unwrap();

    let engine = Engine::new(ClusterConfig::with_slots(16));
    let alg = interval_joins_mr::join::plan(&query, Default::default());
    println!("running {} on: {query}", alg.name());
    let out = alg.run(&query, &input, &engine).unwrap();

    println!("\nco-occurring episodes ({} matches):", out.count);
    for t in out.sorted_tuples().iter().take(10) {
        println!(
            "  wind {}  ⊇  temp {}  and  pollutant {}",
            input.relation(RelId(0)).tuple(t[0]).interval(),
            input.relation(RelId(1)).tuple(t[1]).interval(),
            input.relation(RelId(2)).tuple(t[2]).interval(),
        );
    }
    if out.count > 10 {
        println!("  … and {} more", out.count - 10);
    }
    println!(
        "\n{} MR cycles, {} intermediate pairs",
        out.chain.num_cycles(),
        out.chain.total_pairs()
    );
}
