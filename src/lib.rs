//! Facade crate: re-exports the whole interval-joins-on-MapReduce stack —
//! a Rust reproduction of *Processing Interval Joins On Map-Reduce*
//! (Chawda et al., EDBT 2014).
//!
//! This is the crate downstream users depend on; the workspace's examples
//! and cross-crate integration tests are built against it.
//!
//! * [`interval`] — interval model, Allen's algebra, partitioning, ops.
//! * [`mapreduce`] — the deterministic MapReduce engine.
//! * [`query`] — join query model, components, less-than-order.
//! * [`join`] — the join algorithms (RCCIS, All-Matrix, …).
//! * [`datagen`] — synthetic and packet-train workload generators.
//!
//! # Example
//!
//! ```
//! use interval_joins_mr::prelude::*;
//!
//! // The paper's Q0-style colocation query, in its own notation.
//! let query = parse_query("R1 overlaps R2 and R2 contains R3")?;
//!
//! let iv = |s, e| Interval::new(s, e).unwrap();
//! let input = JoinInput::bind_owned(
//!     &query,
//!     vec![
//!         Relation::from_intervals("R1", vec![iv(0, 40), iv(70, 90)]),
//!         Relation::from_intervals("R2", vec![iv(15, 60), iv(75, 95)]),
//!         Relation::from_intervals("R3", vec![iv(20, 50), iv(80, 85)]),
//!     ],
//! )?;
//!
//! // A simulated 16-slot cluster, like the paper's; the planner picks
//! // RCCIS (Section 6.1) for this query class.
//! let engine = Engine::new(ClusterConfig::with_slots(16));
//! let algorithm = interval_joins_mr::join::plan(&query, Default::default());
//! assert_eq!(algorithm.name(), "RCCIS");
//!
//! let out = algorithm.run(&query, &input, &engine)?;
//! assert_eq!(out.count, 2);
//! assert_eq!(out.chain.num_cycles(), 2); // RCCIS = marking + join
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use ij_core as join;
pub use ij_datagen as datagen;
pub use ij_interval as interval;
pub use ij_mapreduce as mapreduce;
pub use ij_query as query;

pub mod prelude {
    //! One-stop imports for typical use.
    pub use ij_core::{Algorithm, JoinInput, JoinOutput, OutputMode, OutputTuple};
    pub use ij_interval::{AllenPredicate, Interval, Partitioning, RelId, Relation};
    pub use ij_mapreduce::{ClusterConfig, Engine};
    pub use ij_query::{parse_query, JoinQuery};
}
