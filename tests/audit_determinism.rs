//! Whole-suite determinism: every algorithm family, threads 1/2/8,
//! budgets unlimited and pinned-low.
//!
//! PR 3's kernel tests proved chunked intra-bucket execution is
//! order-preserving; `tests/determinism.rs` checks two families
//! end-to-end. This test closes the gap by driving `repolint`'s dynamic
//! auditor, which runs *all twelve* audited family/query cases on a seeded
//! workload under `worker_threads`/`intra_reduce_threads` 1, 2 and 8
//! with a low heavy-bucket threshold (so the parallel kernels engage),
//! serializes each run's output tuples and chain `total_counters`
//! through the Dfs, and byte-diffs the snapshots across thread counts.
//! Every family is additionally re-run with `reduce_memory_budget`
//! pinned to the auditor's `SPILL_BUDGET`, so the spill-to-Dfs reduce
//! path is byte-diffed against the in-memory baseline too, and under the
//! alternate intra-reduce grant policies (uniform / all-serial), so the
//! skew-driven scheduler can never change output bytes. The dedicated
//! sched leg re-runs the clique family on a skewed hot-region mix across
//! the full policy × thread × budget matrix and asserts the heavy bucket
//! actually received a multi-thread grant.

use repolint::audit::{run_audit, SCHED_POLICIES, SPILL_BUDGET, THREAD_COUNTS};

#[test]
fn all_algorithm_families_are_byte_identical_across_thread_counts() {
    let report = run_audit(80).expect("audit suite runs");
    assert_eq!(
        report.cases.len(),
        12,
        "expected every algorithm family to be audited"
    );
    for case in &report.cases {
        assert!(
            case.identical,
            "{} diverged from the single-thread baseline at threads {:?} \
             (budget {SPILL_BUDGET}B at {:?}, policies {:?}) (of {THREAD_COUNTS:?})",
            case.algorithm, case.diverged, case.budget_diverged, case.policy_diverged
        );
        // The workload must actually exercise the join — a zero-output
        // run would pass the diff vacuously.
        assert!(
            case.output_count > 0,
            "{} produced no output tuples",
            case.algorithm
        );
    }
    // The pinned budget must actually drive at least one family through
    // the spill path, or the budgeted re-audit is vacuous.
    assert!(
        report.cases.iter().any(|c| c.spilled_buckets > 0),
        "no family spilled under the pinned {SPILL_BUDGET}B budget:\n{}",
        report.render()
    );
    // The skew-scheduler leg: byte-identical across the full grant-policy
    // matrix, and the heavy bucket of the skewed mix must really have run
    // with a multi-thread grant — an inert scheduler fails the audit.
    let sched = report.sched.as_ref().expect("sched leg present");
    assert!(
        sched.identical,
        "grant policies {:?} changed output bytes at {:?}:\n{}",
        SCHED_POLICIES.map(|p| p.name()),
        sched.diverged,
        report.render()
    );
    assert!(sched.output_count > 0, "sched leg produced no output");
    assert!(
        sched.heavy_buckets > 0 && sched.max_grant > 1,
        "skewed mix never landed a multi-thread grant \
         ({} heavy buckets, max grant {}):\n{}",
        sched.heavy_buckets,
        sched.max_grant,
        report.render()
    );
    assert!(report.deterministic());
}
