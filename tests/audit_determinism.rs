//! Whole-suite determinism: every algorithm family, threads 1/2/8.
//!
//! PR 3's kernel tests proved chunked intra-bucket execution is
//! order-preserving; `tests/determinism.rs` checks two families
//! end-to-end. This test closes the gap by driving `repolint`'s dynamic
//! auditor, which runs *all eleven* algorithm families on a seeded
//! workload under `worker_threads`/`intra_reduce_threads` 1, 2 and 8
//! with a low heavy-bucket threshold (so the parallel kernels engage),
//! serializes each run's output tuples and chain `total_counters`
//! through the Dfs, and byte-diffs the snapshots across thread counts.

use repolint::audit::{run_audit, THREAD_COUNTS};

#[test]
fn all_algorithm_families_are_byte_identical_across_thread_counts() {
    let report = run_audit(80).expect("audit suite runs");
    assert_eq!(
        report.cases.len(),
        11,
        "expected every algorithm family to be audited"
    );
    for case in &report.cases {
        assert!(
            case.identical,
            "{} diverged from the single-thread baseline at threads {:?} \
             (of {THREAD_COUNTS:?})",
            case.algorithm, case.diverged
        );
        // The workload must actually exercise the join — a zero-output
        // run would pass the diff vacuously.
        assert!(
            case.output_count > 0,
            "{} produced no output tuples",
            case.algorithm
        );
    }
    assert!(report.deterministic());
}
