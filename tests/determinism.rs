//! End-to-end determinism and fault tolerance.
//!
//! The engine promises byte-identical results regardless of worker-thread
//! count and across injected reducer failures (Hadoop semantics: reduce
//! tasks are pure and retried). These tests verify the promise holds
//! through complete multi-cycle algorithms, not just single jobs.

use ij_core::hybrid::AllSeqMatrix;
use ij_core::rccis::Rccis;
use ij_core::{Algorithm, JoinInput, JoinOutput};
use ij_interval::AllenPredicate::{Before, Overlaps};
use ij_interval::{Interval, Relation};
use ij_mapreduce::{ClusterConfig, CostModel, Engine, FaultPlan};
use ij_query::JoinQuery;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn workload(q: &JoinQuery, seed: u64) -> JoinInput {
    let mut rng = StdRng::seed_from_u64(seed);
    let rels = (0..q.num_relations())
        .map(|r| {
            Relation::from_intervals(
                format!("R{r}"),
                (0..120).map(|_| {
                    let s = rng.gen_range(0..400);
                    Interval::new(s, s + rng.gen_range(0..50)).unwrap()
                }),
            )
        })
        .collect();
    JoinInput::bind_owned(q, rels).unwrap()
}

fn engine_with_threads(threads: usize) -> Engine {
    Engine::new(ClusterConfig {
        reducer_slots: 4,
        worker_threads: threads,
        cost: CostModel::default(),
        ..ClusterConfig::default()
    })
}

fn run_rccis(engine: &Engine, q: &JoinQuery, input: &JoinInput) -> JoinOutput {
    Rccis::new(6).run(q, input, engine).unwrap()
}

#[test]
fn identical_results_across_thread_counts() {
    let q = JoinQuery::chain(&[Overlaps, Overlaps]).unwrap();
    let input = workload(&q, 1);
    let base = run_rccis(&engine_with_threads(1), &q, &input);
    for threads in [2, 3, 8] {
        let out = run_rccis(&engine_with_threads(threads), &q, &input);
        assert_eq!(out.tuples, base.tuples, "threads = {threads}");
        assert_eq!(out.count, base.count);
        // Metrics that do not depend on wall time must match too — the
        // partitioned shuffle's byte accounting is thread-count invariant.
        for (a, b) in out.chain.cycles.iter().zip(&base.chain.cycles) {
            assert_eq!(a.intermediate_pairs, b.intermediate_pairs);
            assert_eq!(a.shuffle_bytes, b.shuffle_bytes);
            assert_eq!(a.map_input_bytes, b.map_input_bytes);
            assert_eq!(a.output_bytes, b.output_bytes);
            assert_eq!(a.reducer_loads, b.reducer_loads);
        }
    }
}

#[test]
fn phase_walls_cover_every_cycle() {
    let q = JoinQuery::chain(&[Overlaps, Overlaps]).unwrap();
    let input = workload(&q, 4);
    let out = run_rccis(&engine_with_threads(4), &q, &input);
    for c in &out.chain.cycles {
        let phases = c.map_wall + c.shuffle_wall + c.reduce_wall;
        assert!(
            phases <= c.wall,
            "cycle {}: phases {phases:?} exceed wall {:?}",
            c.name,
            c.wall
        );
    }
    // Chain totals aggregate the per-cycle walls.
    let total =
        out.chain.total_map_wall() + out.chain.total_shuffle_wall() + out.chain.total_reduce_wall();
    assert!(total <= out.chain.total_wall());
}

#[test]
fn identical_results_under_reducer_retries() {
    let q = JoinQuery::chain(&[Overlaps, Before]).unwrap();
    let input = workload(&q, 2);
    let clean_engine = engine_with_threads(4);
    let clean = AllSeqMatrix::new(4).run(&q, &input, &clean_engine).unwrap();

    // Fail several reducers of both cycles once or twice.
    let faulty_engine = Engine::new(ClusterConfig {
        reducer_slots: 4,
        worker_threads: 4,
        cost: CostModel::default(),
        ..ClusterConfig::default()
    })
    .with_faults(
        FaultPlan::new()
            .fail("component-mark", 0, 1)
            .fail("component-mark", 2, 2)
            .fail("asm-join", 1, 1)
            .fail("asm-join", 5, 2),
    );
    let faulty = AllSeqMatrix::new(4)
        .run(&q, &input, &faulty_engine)
        .unwrap();

    assert_eq!(faulty.tuples, clean.tuples);
    assert_eq!(faulty.count, clean.count);
    // Retries happened and were recorded.
    let retries: u64 = faulty.chain.cycles.iter().map(|c| c.retries()).sum();
    assert!(retries >= 3, "expected recorded retries, got {retries}");
}

#[test]
fn repeated_runs_are_bit_identical() {
    let q = JoinQuery::chain(&[Overlaps, Overlaps]).unwrap();
    let input = workload(&q, 3);
    let engine = engine_with_threads(8);
    let a = run_rccis(&engine, &q, &input);
    let b = run_rccis(&engine, &q, &input);
    assert_eq!(a.tuples, b.tuples);
    assert_eq!(a.chain.total_pairs(), b.chain.total_pairs());
    assert_eq!(a.chain.total_simulated(), b.chain.total_simulated());
}
