//! The paper's Figure 2: projecting, splitting and replicating a relation.
//!
//! Relation R = {u, v} over a four-partition partitioning: u starts in p1
//! and overlaps p1 and p2; v starts (and ends) in p2. Projecting R yields
//! two pairs, splitting u yields two pairs and v one, replicating u yields
//! four pairs and v three. (The paper's p1..p4 are our indices 0..3.)

use ij_interval::{ops, Interval, MapOp, Partitioning};

#[test]
fn figure2_project_split_replicate() {
    let p = Partitioning::equi_width(0, 40, 4).unwrap();
    let u = Interval::new(3, 16).unwrap();
    let v = Interval::new(12, 18).unwrap();

    // Project: {(p1, u)} and {(p2, v)}.
    assert_eq!(ops::project(u, &p), 0);
    assert_eq!(ops::project(v, &p), 1);

    // Split: u -> {(p1,u),(p2,u)}; v -> {(p2,v)}.
    assert_eq!(ops::split(u, &p), 0..2);
    assert_eq!(ops::split(v, &p), 1..2);

    // Replicate: u -> all four partitions; v -> p2, p3, p4.
    assert_eq!(ops::replicate(u, &p), 0..4);
    assert_eq!(ops::replicate(v, &p), 1..4);

    // Pair counts as the paper reads them off the figure.
    assert_eq!(
        ops::pair_count(MapOp::Project, u, &p) + ops::pair_count(MapOp::Project, v, &p),
        2
    );
    assert_eq!(
        ops::pair_count(MapOp::Split, u, &p) + ops::pair_count(MapOp::Split, v, &p),
        3
    );
    assert_eq!(
        ops::pair_count(MapOp::Replicate, u, &p) + ops::pair_count(MapOp::Replicate, v, &p),
        7
    );
}

#[test]
fn ops_containment_invariants_hold_for_arbitrary_intervals() {
    // project(u) ∈ split(u) ⊆ replicate(u), and replicate always reaches
    // the final partition.
    let p = Partitioning::equi_width(0, 97, 7).unwrap();
    for s in 0..97 {
        for len in [0, 1, 5, 40, 96] {
            let u = Interval::new(s, (s + len).min(96)).unwrap();
            let proj = ops::project(u, &p);
            let split = ops::split(u, &p);
            let repl = ops::replicate(u, &p);
            assert!(split.contains(&proj));
            assert_eq!(split.start, repl.start);
            assert!(split.end <= repl.end);
            assert_eq!(repl.end, p.len());
        }
    }
}
