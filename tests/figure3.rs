//! Reconstruction of the paper's Figure 3 worked example (Sections 5–6).
//!
//! The paper's running query is Q0 = `R1 overlaps R2 and R2 contains R3 and
//! R3 overlaps R4` over intervals u* ∈ R1, v* ∈ R2, w* ∈ R3, x* ∈ R4 laid
//! out across four partition-intervals. Figure 3 itself prints no
//! coordinates, so we reconstruct a layout satisfying the paper's stated
//! facts:
//!
//! * the output consists of exactly the six tuples V1–V6 of Section 6.1;
//! * reducer p2 (our index 1) receives
//!   `U_p2 = {u1,u2,u3,v1,v2,v3,w1,w2,x1,x3}` from splitting;
//! * `{u3,v1,w2}` and `{v3,w2}` are consistent sets crossing p2, and
//!   reducer p2 selects `{u3,v1,w2}` for replication;
//! * V1 = {u3,v1,w2,x2} is computed by reducer p3 (our index 2).
//!
//! (The paper's prose also claims `U2 = {u2,v1,w1,x3}` is consistent and
//! that v3 is replicated *by reducer p2* — claims inconsistent with its own
//! output list and replication rule; see DESIGN.md §5. We follow the
//! algorithm's definitions.)

use ij_core::oracle::oracle_join;
use ij_core::rccis::marking::mark;
use ij_core::rccis::Rccis;
use ij_core::{Algorithm, JoinInput};
use ij_interval::AllenPredicate::{Contains, Overlaps};
use ij_interval::{Interval, Partitioning, Relation};
use ij_mapreduce::{ClusterConfig, Engine};
use ij_query::{crosses_partition, JoinQuery};

fn iv(s: i64, e: i64) -> Interval {
    Interval::new(s, e).unwrap()
}

/// The reconstructed Figure 3 layout. Tuple ids match the paper's
/// subscripts: R1 = [u0, u1, u2, u3], etc.
fn figure3_relations() -> Vec<Relation> {
    vec![
        Relation::from_intervals("R1", vec![iv(0, 8), iv(5, 13), iv(11, 12), iv(11, 22)]),
        Relation::from_intervals("R2", vec![iv(1, 9), iv(14, 33), iv(13, 24), iv(8, 31)]),
        Relation::from_intervals("R3", vec![iv(2, 5), iv(15, 19), iv(18, 27)]),
        Relation::from_intervals("R4", vec![iv(4, 9), iv(10, 12), iv(22, 29), iv(17, 35)]),
    ]
}

fn q0() -> JoinQuery {
    JoinQuery::chain(&[Overlaps, Contains, Overlaps]).unwrap()
}

fn partitioning() -> Partitioning {
    Partitioning::equi_width(0, 40, 4).unwrap()
}

/// The paper's six output tuples, as (u, v, w, x) id quadruples.
const PAPER_OUTPUT: [[u32; 4]; 6] = [
    [3, 1, 2, 2], // V1 = {u3, v1, w2, x2}
    [3, 1, 1, 3], // V2 = {u3, v1, w1, x3}
    [3, 2, 1, 3], // V3 = {u3, v2, w1, x3}
    [1, 3, 2, 2], // V4 = {u1, v3, w2, x2}
    [1, 3, 1, 3], // V5 = {u1, v3, w1, x3}
    [0, 0, 0, 0], // V6 = {u0, v0, w0, x0}
];

#[test]
fn oracle_finds_exactly_the_papers_six_tuples() {
    let q = q0();
    let input = JoinInput::bind_owned(&q, figure3_relations()).unwrap();
    let got = oracle_join(&q, &input);
    let mut want: Vec<Vec<u32>> = PAPER_OUTPUT.iter().map(|t| t.to_vec()).collect();
    want.sort();
    assert_eq!(got, want);
}

#[test]
fn reducer_p2_input_matches_the_paper() {
    // Splitting routes to our partition 1 exactly the paper's U_p2.
    let part = partitioning();
    let rels = figure3_relations();
    let mut received: Vec<(usize, u32)> = Vec::new();
    for (r, rel) in rels.iter().enumerate() {
        for t in rel.tuples() {
            if ij_interval::ops::split(t.interval(), &part).contains(&1) {
                received.push((r, t.id));
            }
        }
    }
    let expected = vec![
        (0, 1), // u1
        (0, 2), // u2
        (0, 3), // u3
        (1, 1), // v1
        (1, 2), // v2
        (1, 3), // v3
        (2, 1), // w1
        (2, 2), // w2
        (3, 1), // x1
        (3, 3), // x3
    ];
    assert_eq!(received, expected);
}

#[test]
fn section53_crossing_sets() {
    let q = q0();
    let part = partitioning();
    let rels = figure3_relations();
    let get = |r: usize, t: u32| Some(rels[r].tuple(t).interval());

    // U4 = {u3, v1, w2} crosses p2 (our 1).
    assert!(crosses_partition(
        &q,
        &part,
        1,
        &[get(0, 3), get(1, 1), get(2, 2), None]
    ));
    // U5 = {v3, w2} crosses p2.
    assert!(crosses_partition(
        &q,
        &part,
        1,
        &[None, get(1, 3), get(2, 2), None]
    ));
    // U6 = {v3, w1} does not (w1 does not cross the right boundary).
    assert!(!crosses_partition(
        &q,
        &part,
        1,
        &[None, get(1, 3), get(2, 1), None]
    ));
}

#[test]
fn rccis_marking_at_p2_selects_the_papers_replication_set() {
    let q = q0();
    let part = partitioning();
    let rels = figure3_relations();
    let per_rel: Vec<Vec<(Interval, u32)>> = rels
        .iter()
        .map(|rel| {
            rel.tuples()
                .iter()
                .map(|t| (t.interval(), t.id))
                .filter(|(iv, _)| part.intersects_partition(*iv, 1))
                .collect()
        })
        .collect();
    let marking = mark(&q, &part, 1, per_rel);
    let flagged: Vec<(usize, u32)> = marking
        .sorted
        .iter()
        .zip(&marking.flags)
        .enumerate()
        .flat_map(|(r, (list, fl))| {
            list.iter()
                .zip(fl)
                .filter(|(_, &f)| f)
                .map(move |((_, tid), _)| (r, *tid))
        })
        .collect();
    // The paper's replication set {u3, v1, w2} is selected…
    for need in [(0usize, 3u32), (1, 1), (2, 2)] {
        assert!(flagged.contains(&need), "missing {need:?} in {flagged:?}");
    }
    // …and the paper's non-members u2, v3, x1 are not:
    for absent in [(0usize, 2u32), (1, 3), (3, 1)] {
        assert!(!flagged.contains(&absent), "extra {absent:?}");
    }
    // Our layout additionally justifies flagging w1 and x3 (via the
    // crossing set {v3, w1, x3}); see the module docs.
    assert!(flagged.contains(&(2, 1)));
    assert!(flagged.contains(&(3, 3)));
}

#[test]
fn u1_and_v3_are_replicated_by_reducer_p1() {
    // Section 6.1: "the interval u1 is replicated by reducer p1" (our 0).
    let q = q0();
    let part = partitioning();
    let rels = figure3_relations();
    let per_rel: Vec<Vec<(Interval, u32)>> = rels
        .iter()
        .map(|rel| {
            rel.tuples()
                .iter()
                .map(|t| (t.interval(), t.id))
                .filter(|(iv, _)| part.intersects_partition(*iv, 0))
                .collect()
        })
        .collect();
    let marking = mark(&q, &part, 0, per_rel);
    let flagged: Vec<(usize, u32)> = marking
        .sorted
        .iter()
        .zip(&marking.flags)
        .enumerate()
        .flat_map(|(r, (list, fl))| {
            list.iter()
                .zip(fl)
                .filter(|(_, &f)| f)
                .map(move |((_, tid), _)| (r, *tid))
        })
        .collect();
    assert_eq!(flagged, vec![(0, 1), (1, 3)]); // u1 and v3, nothing else
}

#[test]
fn v1_and_v4_are_owned_by_reducer_p3() {
    // Section 6.1: V1 (and V4) are computed by reducer p3 (our index 2) —
    // the partition where their right-most interval (x2) is projected.
    let part = partitioning();
    let rels = figure3_relations();
    for tuple in [[3u32, 1, 2, 2], [1, 3, 2, 2]] {
        let owner = tuple
            .iter()
            .enumerate()
            .map(|(r, &t)| part.index_of(rels[r].tuple(t).interval().start()))
            .max()
            .unwrap();
        assert_eq!(owner, 2);
    }
}

#[test]
fn rccis_reproduces_the_figure() {
    let q = q0();
    let input = JoinInput::bind_owned(&q, figure3_relations()).unwrap();
    let engine = Engine::new(ClusterConfig::with_slots(4));
    let out = Rccis::new(4).run(&q, &input, &engine).unwrap();
    assert_eq!(out.assert_no_duplicates(), oracle_join(&q, &input));
    // Under the figure's partitioning ([0,40) in four), the flags are
    // {u1, v3} at p1, {u3, v1, v2, w1, w2, x3} at p2 and {x2} at p3 —
    // 9 in total (see the marking tests above). The algorithm partitions
    // the tight data span [0, 36) instead, which shifts two boundaries and
    // flags two more intervals.
    assert_eq!(out.stats.replicated_intervals, Some(11));
}
