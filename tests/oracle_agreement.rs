//! Cross-algorithm agreement: every algorithm that supports a query class
//! must produce exactly the oracle's output — no missing tuples, no
//! duplicates — across randomized workloads.
//!
//! This is the repository's strongest end-to-end correctness statement:
//! the routing of each algorithm (project/split/replicate choices, RCCIS
//! marking, matrix cells, ownership rules) is validated against an
//! independent single-node join.

use ij_core::all_matrix::AllMatrix;
use ij_core::all_replicate::AllReplicate;
use ij_core::cascade::TwoWayCascade;
use ij_core::gen_matrix::GenMatrix;
use ij_core::hybrid::{AllSeqMatrix, Fcts, Fstc, Pasm};
use ij_core::oracle::oracle_join;
use ij_core::rccis::Rccis;
use ij_core::two_way::TwoWayJoin;
use ij_core::{Algorithm, JoinInput, OutputTuple};
use ij_interval::AllenPredicate::{self, *};
use ij_interval::{Interval, Relation};
use ij_mapreduce::{ClusterConfig, Engine};
use ij_query::{JoinQuery, QueryClass};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_input(q: &JoinQuery, seed: u64, n: usize, span: i64, max_len: i64) -> JoinInput {
    let mut rng = StdRng::seed_from_u64(seed);
    let rels = (0..q.num_relations())
        .map(|r| {
            Relation::from_intervals(
                format!("R{}", r + 1),
                (0..n).map(|_| {
                    let s = rng.gen_range(0..span);
                    Interval::new(s, s + rng.gen_range(0..=max_len)).unwrap()
                }),
            )
        })
        .collect();
    JoinInput::bind_owned(q, rels).unwrap()
}

/// All algorithms applicable to a single-attribute query of the given class.
fn algorithms_for(q: &JoinQuery) -> Vec<Box<dyn Algorithm>> {
    let mut algs: Vec<Box<dyn Algorithm>> = vec![
        Box::new(AllReplicate::new(7)),
        Box::new(TwoWayCascade::new(7)),
        Box::new(AllMatrix::new(4)),
        Box::new(AllSeqMatrix::new(4)),
        Box::new(Pasm::new(4)),
        Box::new(Fcts::new(5, 4)),
        Box::new(GenMatrix::new(4)),
    ];
    if q.num_relations() == 2 {
        algs.push(Box::new(TwoWayJoin::new(6)));
    }
    match q.class() {
        QueryClass::Colocation => algs.push(Box::new(Rccis::new(6))),
        QueryClass::Hybrid => algs.push(Box::new(Fstc::new(5, 4))),
        _ => {}
    }
    algs
}

fn check_query(q: &JoinQuery, seed: u64, n: usize) {
    let input = random_input(q, seed, n, 300, 45);
    let engine = Engine::new(ClusterConfig::with_slots(4));
    let want: Vec<OutputTuple> = oracle_join(q, &input);
    for alg in algorithms_for(q) {
        let got = alg
            .run(q, &input, &engine)
            .unwrap_or_else(|e| panic!("{}: {e} on {q}", alg.name()))
            .assert_no_duplicates();
        assert_eq!(got, want, "{} disagrees on {q} (seed {seed})", alg.name());
    }
}

#[test]
fn colocation_chains() {
    for (i, preds) in [
        vec![Overlaps],
        vec![Overlaps, Overlaps],
        vec![Overlaps, Contains, Overlaps],
        vec![Contains, ContainedBy],
        vec![Meets, Overlaps],
        vec![FinishedBy, Starts],
    ]
    .iter()
    .enumerate()
    {
        check_query(&JoinQuery::chain(preds).unwrap(), 10 + i as u64, 40);
    }
}

#[test]
fn sequence_chains() {
    for (i, preds) in [vec![Before], vec![Before, Before], vec![After, Before]]
        .iter()
        .enumerate()
    {
        check_query(&JoinQuery::chain(preds).unwrap(), 20 + i as u64, 30);
    }
}

#[test]
fn hybrid_chains() {
    for (i, preds) in [
        vec![Overlaps, Before],
        vec![Before, Overlaps],
        vec![Overlaps, Before, Overlaps],
        vec![Contains, Before],
    ]
    .iter()
    .enumerate()
    {
        check_query(&JoinQuery::chain(preds).unwrap(), 30 + i as u64, 25);
    }
}

#[test]
fn star_and_triangle_shapes() {
    use ij_query::Condition;
    // Star: R1 overlaps R2, R1 contains R3.
    let star = JoinQuery::new(
        3,
        vec![
            Condition::whole(0, Overlaps, 1),
            Condition::whole(0, Contains, 2),
        ],
    )
    .unwrap();
    check_query(&star, 41, 35);
    // Triangle with a sequence edge: R1 ov R2, R2 ov R3, R1 before... a
    // triangle must stay satisfiable: R1 ov R2, R2 ov R3, R1 contains R3 is
    // impossible (contains needs e3 < e1 but the chain forces e1 < e2 < e3);
    // use R1 ov R3 is impossible too... R3 finishes-after relationships are
    // constrained; pick R1 ov R2, R1 ov R3, R2 starts... keep it simple:
    let triangle = JoinQuery::new(
        3,
        vec![
            Condition::whole(0, Overlaps, 1),
            Condition::whole(0, Overlaps, 2),
            Condition::whole(1, Before, 2),
        ],
    )
    .unwrap();
    check_query(&triangle, 42, 35);
}

#[test]
fn fully_random_queries_agree() {
    // Random connected chain queries over the full predicate alphabet.
    let mut rng = StdRng::seed_from_u64(99);
    for round in 0..12 {
        let len = rng.gen_range(1..=3);
        let preds: Vec<AllenPredicate> = (0..len)
            .map(|_| AllenPredicate::ALL[rng.gen_range(0..13)])
            .collect();
        let q = JoinQuery::chain(&preds).unwrap();
        check_query(&q, 500 + round, 20);
    }
}

#[test]
fn degenerate_inputs() {
    // Empty relations, single tuples, all-identical intervals.
    let q = JoinQuery::chain(&[Overlaps, Before]).unwrap();
    let engine = Engine::new(ClusterConfig::with_slots(4));

    let empty = JoinInput::bind_owned(
        &q,
        vec![
            Relation::from_intervals("A", vec![Interval::new(0, 5).unwrap()]),
            Relation::new("B", 1),
            Relation::from_intervals("C", vec![Interval::new(9, 12).unwrap()]),
        ],
    )
    .unwrap();
    for alg in algorithms_for(&q) {
        let out = alg.run(&q, &empty, &engine).unwrap();
        assert_eq!(out.count, 0, "{} on empty relation", alg.name());
    }

    let identical = JoinInput::bind_owned(
        &q,
        vec![
            Relation::from_intervals("A", vec![Interval::new(5, 10).unwrap(); 8]),
            Relation::from_intervals("B", vec![Interval::new(7, 20).unwrap(); 8]),
            Relation::from_intervals("C", vec![Interval::new(30, 31).unwrap(); 8]),
        ],
    )
    .unwrap();
    let want = oracle_join(&q, &identical);
    assert_eq!(want.len(), 512);
    for alg in algorithms_for(&q) {
        assert_eq!(
            alg.run(&q, &identical, &engine)
                .unwrap()
                .assert_no_duplicates(),
            want,
            "{} on identical intervals",
            alg.name()
        );
    }
}

#[test]
fn point_interval_inputs() {
    // Length-0 intervals reduce colocation to equality and sequence to
    // inequality — the Section 6.3/9 degenerate case.
    let q = JoinQuery::chain(&[Equals, Before]).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let rels = (0..3)
        .map(|r| {
            Relation::from_intervals(
                format!("R{r}"),
                (0..40).map(|_| Interval::point(rng.gen_range(0..30))),
            )
        })
        .collect();
    let input = JoinInput::bind_owned(&q, rels).unwrap();
    let engine = Engine::new(ClusterConfig::with_slots(4));
    let want = oracle_join(&q, &input);
    assert!(!want.is_empty());
    for alg in algorithms_for(&q) {
        assert_eq!(
            alg.run(&q, &input, &engine).unwrap().assert_no_duplicates(),
            want,
            "{}",
            alg.name()
        );
    }
}
