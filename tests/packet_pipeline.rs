//! End-to-end pipeline test: simulated packet trace → packet trains →
//! persisted relation file → reload → star self-join — the whole Table 2
//! data path, at miniature scale.

use ij_core::oracle::oracle_join;
use ij_core::rccis::Rccis;
use ij_core::{Algorithm, JoinInput};
use ij_datagen::profiles::TraceProfile;
use ij_datagen::trains::{replicate_to, trains_from_packets, trains_relation, PAPER_CUTOFF_US};
use ij_datagen::{load_relation, save_relation, PacketStreamGen};
use ij_interval::AllenPredicate::Overlaps;
use ij_mapreduce::{ClusterConfig, Engine};
use ij_query::{Condition, JoinQuery};
use std::sync::Arc;

#[test]
fn table2_data_path_end_to_end() {
    // 1. Simulate a small P04 trace and build trains.
    let profile = TraceProfile::by_name("P04").unwrap();
    let packets = PacketStreamGen::new(profile.stream_config(0.01, 7)).generate();
    assert!(!packets.is_empty());
    let trains = trains_from_packets(&packets, PAPER_CUTOFF_US);
    assert!(!trains.is_empty());
    // Trains partition the packets.
    let total: u64 = trains.iter().map(|t| t.packets as u64).sum();
    assert_eq!(total, packets.len() as u64);

    // 2. Replicate toward a target size (paper: 3M; here 3x the base).
    let target = trains.len() * 3;
    let big = replicate_to(&trains, target, 1000);
    assert_eq!(big.len(), target);

    // 3. Persist and reload through the HDFS-style line format.
    let rel = trains_relation("P04", &big);
    let dir = std::env::temp_dir().join(format!("ij-pipeline-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("p04.tsv");
    save_relation(&path, &rel).unwrap();
    let reloaded = load_relation(&path).unwrap();
    assert_eq!(reloaded, rel);
    std::fs::remove_dir_all(&dir).unwrap();

    // 4. Star self-join on the reloaded relation, RCCIS vs oracle.
    let q = JoinQuery::new(
        3,
        vec![
            Condition::whole(0, Overlaps, 1),
            Condition::whole(1, Overlaps, 2),
        ],
    )
    .unwrap();
    let input = JoinInput::bind_self_join(&q, Arc::new(reloaded)).unwrap();
    let engine = Engine::new(ClusterConfig::with_slots(4));
    let out = Rccis::new(8).run(&q, &input, &engine).unwrap();
    assert_eq!(out.assert_no_duplicates(), oracle_join(&q, &input));
    assert!(
        out.count > 0,
        "replicated dense trace should produce overlapping triples"
    );
}

#[test]
fn train_durations_are_heavy_tailed() {
    // The join-relevant structure the simulator must preserve: most trains
    // are short, a few are long (bursty traffic).
    let profile = TraceProfile::by_name("P07").unwrap(); // ~25 pkts/train
    let trains = profile.generate_trains(0.005, 3);
    assert!(trains.len() > 100);
    let mut lens: Vec<i64> = trains.iter().map(|t| t.interval().len()).collect();
    lens.sort_unstable();
    let median = lens[lens.len() / 2];
    let p99 = lens[lens.len() * 99 / 100];
    assert!(
        p99 > median * 3,
        "expected a heavy tail: median {median}, p99 {p99}"
    );
}
