//! Property-based tests (proptest) over the core invariants.
//!
//! * Allen's algebra: exactly one of the thirteen relations holds for any
//!   interval pair; converses and operand orders are consistent.
//! * Project/split/replicate containment invariants on arbitrary
//!   partitionings.
//! * Distributed-vs-oracle agreement for the flagship algorithms on
//!   arbitrary data and several query shapes.

use ij_core::all_matrix::AllMatrix;
use ij_core::gen_matrix::GenMatrix;
use ij_core::hybrid::AllSeqMatrix;
use ij_core::oracle::oracle_join;
use ij_core::rccis::Rccis;
use ij_core::{Algorithm, JoinInput};
use ij_interval::AllenPredicate::{self, *};
use ij_interval::{ops, Interval, Partitioning, Relation};
use ij_mapreduce::{ClusterConfig, Engine};
use ij_query::JoinQuery;
use proptest::prelude::*;

fn interval_strategy(span: i64, max_len: i64) -> impl Strategy<Value = Interval> {
    (0..span, 0..=max_len).prop_map(|(s, l)| Interval::new(s, s + l).unwrap())
}

fn relation_strategy(n: usize, span: i64, max_len: i64) -> impl Strategy<Value = Vec<Interval>> {
    proptest::collection::vec(interval_strategy(span, max_len), 1..=n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exactly_one_allen_relation(a in interval_strategy(60, 20), b in interval_strategy(60, 20)) {
        let holding: Vec<_> = AllenPredicate::ALL.iter().filter(|p| p.holds(a, b)).collect();
        prop_assert_eq!(holding.len(), 1);
        prop_assert_eq!(*holding[0], AllenPredicate::relate(a, b));
    }

    #[test]
    fn converse_consistency(a in interval_strategy(60, 20), b in interval_strategy(60, 20)) {
        for p in AllenPredicate::ALL {
            prop_assert_eq!(p.holds(a, b), p.inverse().holds(b, a));
        }
    }

    #[test]
    fn op_invariants(
        u in interval_strategy(200, 80),
        k in 1usize..12,
    ) {
        let part = Partitioning::equi_width(0, 280, k).unwrap();
        let proj = ops::project(u, &part);
        let split = ops::split(u, &part);
        let repl = ops::replicate(u, &part);
        prop_assert!(split.contains(&proj));
        prop_assert_eq!(split.start, repl.start);
        prop_assert!(split.end <= repl.end);
        prop_assert_eq!(repl.end, part.len());
        // Split covers exactly the partitions u intersects.
        for i in part.indices() {
            prop_assert_eq!(split.contains(&i), part.intersects_partition(u, i));
        }
    }

    #[test]
    fn rccis_agrees_with_oracle(
        r1 in relation_strategy(25, 150, 40),
        r2 in relation_strategy(25, 150, 40),
        r3 in relation_strategy(25, 150, 40),
        k in 2usize..9,
    ) {
        let q = JoinQuery::chain(&[Overlaps, Contains]).unwrap();
        let input = JoinInput::bind_owned(&q, vec![
            Relation::from_intervals("R1", r1),
            Relation::from_intervals("R2", r2),
            Relation::from_intervals("R3", r3),
        ]).unwrap();
        let engine = Engine::new(ClusterConfig::with_slots(4));
        let got = Rccis::new(k).run(&q, &input, &engine).unwrap().assert_no_duplicates();
        prop_assert_eq!(got, oracle_join(&q, &input));
    }

    #[test]
    fn all_matrix_agrees_with_oracle(
        r1 in relation_strategy(20, 120, 30),
        r2 in relation_strategy(20, 120, 30),
        o in 2usize..7,
    ) {
        let q = JoinQuery::chain(&[Before]).unwrap();
        let input = JoinInput::bind_owned(&q, vec![
            Relation::from_intervals("R1", r1),
            Relation::from_intervals("R2", r2),
        ]).unwrap();
        let engine = Engine::new(ClusterConfig::with_slots(4));
        let got = AllMatrix::new(o).run(&q, &input, &engine).unwrap().assert_no_duplicates();
        prop_assert_eq!(got, oracle_join(&q, &input));
    }

    #[test]
    fn all_seq_matrix_agrees_with_oracle(
        r1 in relation_strategy(18, 150, 50),
        r2 in relation_strategy(18, 150, 50),
        r3 in relation_strategy(18, 150, 50),
        o in 2usize..6,
    ) {
        let q = JoinQuery::chain(&[Overlaps, Before]).unwrap();
        let input = JoinInput::bind_owned(&q, vec![
            Relation::from_intervals("R1", r1),
            Relation::from_intervals("R2", r2),
            Relation::from_intervals("R3", r3),
        ]).unwrap();
        let engine = Engine::new(ClusterConfig::with_slots(4));
        let got = AllSeqMatrix::new(o).run(&q, &input, &engine).unwrap().assert_no_duplicates();
        prop_assert_eq!(got, oracle_join(&q, &input));
    }

    #[test]
    fn gen_matrix_agrees_on_two_attribute_queries(
        rows1 in proptest::collection::vec((0i64..100, 0i64..30, 0i64..6), 1..15),
        rows2 in proptest::collection::vec((0i64..100, 0i64..30, 0i64..6), 1..15),
        o in 2usize..6,
    ) {
        use ij_query::{AttrRef, Condition, query::RelationMeta};
        let q = JoinQuery::with_relations(
            vec![
                RelationMeta { name: "A".into(), attr_names: vec!["I".into(), "k".into()] },
                RelationMeta { name: "B".into(), attr_names: vec!["I".into(), "k".into()] },
            ],
            vec![
                Condition::new(AttrRef::new(0, 0), Overlaps, AttrRef::new(1, 0)),
                Condition::new(AttrRef::new(0, 1), Equals, AttrRef::new(1, 1)),
            ],
        ).unwrap();
        let mk = |rows: Vec<(i64, i64, i64)>, name: &str| Relation::from_rows(
            name,
            rows.into_iter().map(|(s, l, k)| vec![
                Interval::new(s, s + l).unwrap(),
                Interval::point(k),
            ]),
        );
        let input = JoinInput::bind_owned(&q, vec![mk(rows1, "A"), mk(rows2, "B")]).unwrap();
        let engine = Engine::new(ClusterConfig::with_slots(4));
        let got = GenMatrix::new(o).run(&q, &input, &engine).unwrap().assert_no_duplicates();
        prop_assert_eq!(got, oracle_join(&q, &input));
    }

    #[test]
    fn random_predicate_chains_agree(
        p1 in 0usize..13,
        p2 in 0usize..13,
        r1 in relation_strategy(12, 80, 25),
        r2 in relation_strategy(12, 80, 25),
        r3 in relation_strategy(12, 80, 25),
    ) {
        let preds = [AllenPredicate::ALL[p1], AllenPredicate::ALL[p2]];
        let q = JoinQuery::chain(&preds).unwrap();
        let input = JoinInput::bind_owned(&q, vec![
            Relation::from_intervals("R1", r1),
            Relation::from_intervals("R2", r2),
            Relation::from_intervals("R3", r3),
        ]).unwrap();
        let engine = Engine::new(ClusterConfig::with_slots(4));
        // All-Seq-Matrix handles every single-attribute class uniformly.
        let got = AllSeqMatrix::new(4).run(&q, &input, &engine).unwrap().assert_no_duplicates();
        prop_assert_eq!(got, oracle_join(&q, &input));
    }
}
