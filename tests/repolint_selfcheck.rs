//! Cross-crate self-check: the workspace's own call graph carries zero
//! unmarked panic-propagation violations reachable from `Engine::run_job`
//! and zero counter-registry drift. This is the CI-facing pin for the
//! `repolint graph` pass — if a new helper reachable from the engine
//! grows an `unwrap()`, or a counter name bypasses
//! `mapreduce::metrics::names`, this test fails before the lint job does.

use std::path::Path;

#[test]
fn workspace_graph_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let (violations, graph, scanned) =
        repolint::graph::check_workspace_graph(root).expect("graph scan");
    assert!(
        scanned > 50,
        "expected a real workspace scan, saw {scanned} files"
    );
    // The graph actually modeled the engine: its entry point and the Dfs
    // methods must be nodes, and run_job must call into the reduce phase.
    let run_job = graph
        .nodes
        .iter()
        .position(|n| n.display == "Engine::run_job")
        .expect("Engine::run_job is a call-graph node");
    assert!(graph.nodes.iter().any(|n| n.display == "Dfs::read_range"));
    let parent = graph.reach(&[run_job]);
    let reached = parent.iter().filter(|p| p.is_some()).count();
    assert!(
        reached > 10,
        "Engine::run_job should reach a real closure, reached {reached} nodes"
    );

    let panic_violations: Vec<_> = violations
        .iter()
        .filter(|v| v.rule == "panic-propagation")
        .collect();
    assert!(
        panic_violations.is_empty(),
        "unmarked panic-capable functions reachable from the engine:\n{panic_violations:#?}"
    );
    let registry_violations: Vec<_> = violations
        .iter()
        .filter(|v| v.rule == "counter-registry")
        .collect();
    assert!(
        registry_violations.is_empty(),
        "counter-registry drift:\n{registry_violations:#?}"
    );
    assert!(
        violations.is_empty(),
        "workspace graph has violations:\n{violations:#?}"
    );
}

#[test]
fn execution_shape_classifiers_are_registry_backed() {
    // The satellite dedup: both classifiers must be the registry's —
    // the historical re-export paths and the registry module agree on
    // every registered name.
    use ij_mapreduce::metrics::names;
    for name in names::ALL {
        assert_eq!(
            ij_mapreduce::is_execution_shape(name),
            names::is_execution_shape(name),
            "{name}"
        );
        assert_eq!(
            ij_mapreduce::telemetry::snapshot::is_execution_shape_series(name),
            names::is_execution_shape_series(name),
            "{name}"
        );
    }
    // The one intentionally split classification stays pinned: reduce
    // heartbeats are execution-shape as counters but data-plane as series.
    assert!(names::is_execution_shape(names::HEARTBEATS_REDUCE));
    assert!(!names::is_execution_shape_series(names::HEARTBEATS_REDUCE));
}
