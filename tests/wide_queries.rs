//! Stress tests with wider queries than the paper's examples: 5–6 way
//! chains, duplicate conditions, and mixed shapes — the marking's
//! connected-subset enumeration and the matrix dimensionality both grow
//! here.

use ij_core::all_replicate::AllReplicate;
use ij_core::hybrid::AllSeqMatrix;
use ij_core::oracle::oracle_join;
use ij_core::rccis::Rccis;
use ij_core::two_way::TwoWayJoin;
use ij_core::{Algorithm, JoinInput};
use ij_interval::AllenPredicate::*;
use ij_interval::{Interval, Relation};
use ij_mapreduce::{ClusterConfig, Engine};
use ij_query::{Condition, JoinQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_rels(q: &JoinQuery, seed: u64, n: usize, span: i64, max_len: i64) -> JoinInput {
    let mut rng = StdRng::seed_from_u64(seed);
    let rels = (0..q.num_relations())
        .map(|r| {
            Relation::from_intervals(
                format!("R{}", r + 1),
                (0..n).map(|_| {
                    let s = rng.gen_range(0..span);
                    Interval::new(s, s + rng.gen_range(0..=max_len)).unwrap()
                }),
            )
        })
        .collect();
    JoinInput::bind_owned(q, rels).unwrap()
}

fn engine() -> Engine {
    Engine::new(ClusterConfig::with_slots(4))
}

#[test]
fn five_way_colocation_chain() {
    let q = JoinQuery::chain(&[Overlaps, Contains, Overlaps, ContainedBy]).unwrap();
    let input = random_rels(&q, 1, 25, 250, 80);
    let got = Rccis::new(6)
        .run(&q, &input, &engine())
        .unwrap()
        .assert_no_duplicates();
    assert_eq!(got, oracle_join(&q, &input));
}

#[test]
fn six_way_hybrid_chain() {
    // Two colocation components bridged by two sequence edges.
    let q = JoinQuery::chain(&[Overlaps, Before, Overlaps, Before, Overlaps]).unwrap();
    let input = random_rels(&q, 2, 12, 400, 60);
    let want = oracle_join(&q, &input);
    let asm = AllSeqMatrix::new(3)
        .run(&q, &input, &engine())
        .unwrap()
        .assert_no_duplicates();
    assert_eq!(asm, want);
    let ar = AllReplicate::new(6)
        .run(&q, &input, &engine())
        .unwrap()
        .assert_no_duplicates();
    assert_eq!(ar, want);
}

#[test]
fn double_star_colocation() {
    // R3 is the hub of two stars: R1 ov R3, R2 ov R3, R3 contains R4,
    // R3 contains R5 — non-chain connected subsets in the marking.
    let q = JoinQuery::new(
        5,
        vec![
            Condition::whole(0, Overlaps, 2),
            Condition::whole(1, Overlaps, 2),
            Condition::whole(2, Contains, 3),
            Condition::whole(2, Contains, 4),
        ],
    )
    .unwrap();
    let input = random_rels(&q, 3, 20, 250, 90);
    let got = Rccis::new(6)
        .run(&q, &input, &engine())
        .unwrap()
        .assert_no_duplicates();
    assert_eq!(got, oracle_join(&q, &input));
}

#[test]
fn duplicate_condition_is_idempotent() {
    // The same predicate stated twice between the same relations must not
    // change the output (any other predicate pair is unsatisfiable, since
    // Allen relations are mutually exclusive).
    let single = JoinQuery::new(2, vec![Condition::whole(0, Overlaps, 1)]).unwrap();
    let doubled = JoinQuery::new(
        2,
        vec![
            Condition::whole(0, Overlaps, 1),
            Condition::whole(0, Overlaps, 1),
        ],
    )
    .unwrap();
    let input = random_rels(&single, 4, 80, 300, 40);
    let input_doubled = JoinInput::bind(&doubled, input.relations().to_vec()).unwrap();
    let a = TwoWayJoin::new(5)
        .run(&single, &input, &engine())
        .unwrap()
        .assert_no_duplicates();
    let b = TwoWayJoin::new(5)
        .run(&doubled, &input_doubled, &engine())
        .unwrap()
        .assert_no_duplicates();
    assert_eq!(a, b);
    assert!(!a.is_empty());
}

#[test]
fn contradictory_pair_between_same_relations_is_empty() {
    // Two different Allen predicates between the same pair can never both
    // hold; every algorithm must return the empty join.
    let q = JoinQuery::new(
        2,
        vec![
            Condition::whole(0, Overlaps, 1),
            Condition::whole(0, Contains, 1),
        ],
    )
    .unwrap();
    let input = random_rels(&q, 5, 60, 200, 40);
    let out = TwoWayJoin::new(5).run(&q, &input, &engine()).unwrap();
    assert_eq!(out.count, 0);
    assert!(oracle_join(&q, &input).is_empty());
}
