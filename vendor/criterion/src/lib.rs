//! Offline stub of `criterion`: same macros and builder surface, reduced
//! measurement. Each benchmark runs a short warmup then a timed batch and
//! prints the mean iteration time — no outlier analysis, HTML reports, or
//! saved baselines. Passing `--test` (as CI smoke runs do via
//! `cargo bench -- --test`) executes every benchmark body exactly once and
//! skips timing, so wiring bugs fail fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 3;
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
const MAX_MEASURE_ITERS: u64 = 10_000;

/// Benchmark registry/driver handed to `criterion_group!` targets.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(self.test_mode, id, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's sampling is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub does not report throughput.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        run_one(self.criterion.test_mode, &full, &mut f);
        self
    }

    /// Runs a parameterised benchmark within this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.0);
        run_one(self.criterion.test_mode, &full, &mut |b: &mut Bencher| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op in the stub; kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifies a benchmark, optionally parameterised (`name/param`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds the `name/param` identifier.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Units for [`BenchmarkGroup::throughput`] (accepted, not reported).
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    test_mode: bool,
    iters_run: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, or runs it once in `--test` mode.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            self.iters_run = 1;
            return;
        }
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < MAX_MEASURE_ITERS && start.elapsed() < MEASURE_BUDGET {
            black_box(routine());
            iters += 1;
        }
        self.elapsed = start.elapsed();
        self.iters_run = iters;
    }
}

fn run_one(test_mode: bool, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        test_mode,
        iters_run: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if test_mode {
        println!("test {id} ... ok");
    } else if b.iters_run > 0 {
        let mean = b.elapsed / b.iters_run as u32;
        println!("{id:<60} {mean:>12.2?}/iter ({} iters)", b.iters_run);
        append_json_summary(id, mean.as_nanos() as u64, b.iters_run);
    } else {
        println!("{id:<60} (no iterations run)");
    }
}

/// When `BENCH_JSON` names a file, appends one JSON line per benchmark —
/// `{"id":…,"mean_ns":…,"iters":…}` — so CI can upload a machine-readable
/// summary next to the human-readable log.
fn append_json_summary(id: &str, mean_ns: u64, iters: u64) {
    use std::io::Write;
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let escaped: String = id
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            _ => vec![c],
        })
        .collect();
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = writeln!(
            f,
            "{{\"id\":\"{escaped}\",\"mean_ns\":{mean_ns},\"iters\":{iters}}}"
        );
    }
}

/// Bundles benchmark functions into a runner invoked by `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running each `criterion_group!` runner.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_body_in_test_mode_once() {
        let mut count = 0;
        let mut b = Bencher {
            test_mode: true,
            iters_run: 0,
            elapsed: Duration::ZERO,
        };
        b.iter(|| count += 1);
        assert_eq!(count, 1);
        assert_eq!(b.iters_run, 1);
    }

    #[test]
    fn json_summary_appends_escaped_lines() {
        let path = std::env::temp_dir().join(format!("bench_json_test_{}", std::process::id()));
        let path_str = path.to_str().unwrap().to_string();
        // Env vars are process-global; restore state even though no other
        // test in this stub reads BENCH_JSON.
        std::env::set_var("BENCH_JSON", &path_str);
        append_json_summary("group/with \"quote\"", 1500, 42);
        append_json_summary("plain", 7, 1);
        std::env::remove_var("BENCH_JSON");
        let body = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(
            body,
            "{\"id\":\"group/with \\\"quote\\\"\",\"mean_ns\":1500,\"iters\":42}\n\
             {\"id\":\"plain\",\"mean_ns\":7,\"iters\":1}\n"
        );
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Elements(4));
        let mut ran = 0;
        group.bench_with_input(BenchmarkId::new("p", 3), &3u64, |b, &n| {
            b.iter(|| black_box(n + 1));
            ran += 1;
        });
        group.finish();
        assert_eq!(ran, 1);
    }
}
