//! Offline stub of the `crossbeam` scoped-thread API, backed by
//! `std::thread::scope`.
//!
//! Only the surface this workspace uses is provided: [`scope`], with
//! [`Scope::spawn`] and [`ScopedJoinHandle::join`]. Panic semantics mirror
//! crossbeam closely enough for the engine: `join` returns the child's
//! original panic payload, and a panic escaping the scope closure itself is
//! captured and returned as the scope `Err`.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Spawns scoped threads; handed to the closure passed to [`scope`].
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Argument passed to every spawned closure (crossbeam passes the scope so
/// children can spawn grandchildren; this workspace never does, so the stub
/// passes an opaque token).
pub struct ScopeArg(());

/// Owned handle to a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread to finish, returning its result or its panic
    /// payload.
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&ScopeArg) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&ScopeArg(()))),
        }
    }
}

/// Creates a scope for spawning threads that may borrow from the caller.
///
/// Returns `Ok(r)` with the closure's result, or `Err(payload)` if the
/// closure (or an unjoined child, via std's scope panic) panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_runs_threads_and_collects_results() {
        let data = [1u64, 2, 3, 4];
        let sum: u64 = scope(|s| {
            let handles: Vec<_> = data.iter().map(|&n| s.spawn(move |_| n * 2)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(sum, 20);
    }

    #[test]
    fn join_returns_original_panic_payload() {
        let res: Result<(), _> = scope(|s| {
            let h = s.spawn(|_| panic!("boom-{}", 42));
            let err = h.join().unwrap_err();
            // rustc may const-fold a fully literal format into &str.
            let msg = err
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| err.downcast_ref::<&str>().copied())
                .unwrap();
            assert_eq!(msg, "boom-42");
        });
        assert!(res.is_ok());
    }
}
