//! Offline stub of `parking_lot`'s `Mutex`/`RwLock`, backed by `std::sync`.
//!
//! Matches parking_lot's ergonomics where this workspace relies on them:
//! `lock`/`read`/`write` return guards directly (no `Result`), and poisoning
//! is ignored — a panicking holder does not poison the lock for later users,
//! which the engine's fault-injection tests depend on.

use std::fmt;
use std::sync::PoisonError;

/// Guard types are std's; only the acquisition API differs.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// See [`MutexGuard`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// See [`MutexGuard`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutex that never poisons.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            Err(_) => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// A reader-writer lock that never poisons.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        assert_eq!(*m.lock(), 0); // not poisoned
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
