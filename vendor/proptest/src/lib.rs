//! Offline stub of `proptest`: seeded random sampling without shrinking.
//!
//! Each `proptest!` test body runs `ProptestConfig::cases` times with a
//! deterministic per-case [`rand::rngs::StdRng`] (derived from the case
//! index), sampling every `pat in strategy` binding fresh each iteration.
//! A failing case panics with the normal assert message but is not shrunk
//! to a minimal counterexample — rerun with the printed case index to
//! reproduce.
//!
//! Supported surface: integer/float range strategies, tuples up to six
//! elements, [`strategy::Strategy::prop_map`], [`collection::vec()`],
//! [`array::uniform3`]/[`array::uniform4`], `prop_assert!`,
//! `prop_assert_eq!`, and `#![proptest_config(...)]`.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, SampleRange};
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            (self.f)(self.source.sample(rng))
        }
    }

    impl<T: Copy> Strategy for Range<T>
    where
        Range<T>: SampleRange<T>,
    {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T: Copy> Strategy for RangeInclusive<T>
    where
        RangeInclusive<T>: SampleRange<T>,
    {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_strategy_tuple {
        ($(($($s:ident . $idx:tt),+ $(,)?))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    impl_strategy_tuple! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Strategy producing fixed-size arrays (see [`crate::array`]).
    pub struct ArrayStrategy<S, const N: usize> {
        pub(crate) element: S,
        pub(crate) _marker: PhantomData<[(); N]>,
    }

    impl<S: Strategy, const N: usize> Strategy for ArrayStrategy<S, N> {
        type Value = [S::Value; N];

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            std::array::from_fn(|_| self.element.sample(rng))
        }
    }

    /// Strategy producing variable-length vectors (see [`crate::collection`]).
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) min_len: usize,
        pub(crate) max_len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.min_len..=self.max_len);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod array {
    use super::strategy::{ArrayStrategy, Strategy};
    use std::marker::PhantomData;

    /// Strategy for `[S::Value; 3]` sampling each element independently.
    pub fn uniform3<S: Strategy>(element: S) -> ArrayStrategy<S, 3> {
        ArrayStrategy {
            element,
            _marker: PhantomData,
        }
    }

    /// Strategy for `[S::Value; 4]` sampling each element independently.
    pub fn uniform4<S: Strategy>(element: S) -> ArrayStrategy<S, 4> {
        ArrayStrategy {
            element,
            _marker: PhantomData,
        }
    }
}

pub mod collection {
    use super::strategy::{Strategy, VecStrategy};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for [`vec()`].
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        let size = size.into();
        VecStrategy {
            element,
            min_len: size.min,
            max_len: size.max,
        }
    }
}

pub mod test_runner {
    /// Subset of proptest's runner configuration: just the case count.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[doc(hidden)]
pub mod __rng {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;
}

/// Declares property tests. Each `pat in strategy` argument is sampled
/// fresh per case; the body runs `cases` times (default 256, override via
/// `#![proptest_config(ProptestConfig::with_cases(n))]` as the first item).
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases as u64 {
                    // Distinct deterministic stream per case; splitmix64-style
                    // spread so neighbouring cases aren't correlated.
                    let mut rng = <$crate::__rng::StdRng as $crate::__rng::SeedableRng>::seed_from_u64(
                        case.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(0x243f_6a88_85a3_08d3),
                    );
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` under a proptest-compatible name (no shrinking to report).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name (no shrinking to report).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (i64, i64)> {
        (0i64..10, 5i64..=9).prop_map(|(a, b)| (a, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..17, (a, b) in pair()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0..10).contains(&a));
            prop_assert!((5..=9).contains(&b));
        }

        #[test]
        fn vec_and_array_sizes(
            v in crate::collection::vec(0u8..255, 2..5),
            arr in crate::array::uniform3(0i64..4),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert_eq!(arr.len(), 3);
            prop_assert!(arr.iter().all(|&x| (0..4).contains(&x)));
        }
    }

    #[test]
    fn default_config_is_256_cases() {
        assert_eq!(ProptestConfig::default().cases, 256);
    }
}
