//! Offline stub of the `rand` 0.8 API surface this workspace uses.
//!
//! [`rngs::StdRng`] is a xoshiro256++ generator seeded through splitmix64 —
//! deterministic and high-quality, but a *different stream* than upstream
//! rand's ChaCha12-based `StdRng` for the same seed. Everything in this
//! workspace treats seeded streams as opaque (tests assert properties, not
//! exact draws), so only in-repo determinism matters.
//!
//! Provided: `Rng::{gen, gen_range, gen_bool, fill}`, `SeedableRng::
//! {seed_from_u64, from_entropy}`, integer/float ranges (half-open and
//! inclusive), and `rngs::StdRng`.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: 64 random bits per call.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly "from the standard distribution" (`rng.gen()`).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with a uniform-in-interval sampler, usable with [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[lo, hi)`, or `[lo, hi]` when `inclusive`.
    ///
    /// # Panics
    /// Panics if the interval is empty.
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) + i128::from(inclusive);
                assert!(span > 0, "cannot sample empty range");
                let v = (rng.next_u64() as u128) % span as u128;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        _inclusive: bool,
        rng: &mut R,
    ) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
///
/// Single generic impl per range shape (mirroring upstream rand), so type
/// inference unifies untyped integer literals with the surrounding context.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(*self.start(), *self.end(), true, rng)
    }
}

/// The user-facing random-value API, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferred [`StandardSample`] type.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from ambient entropy (time + address).
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        let stack = &t as *const _ as u64;
        Self::seed_from_u64(t ^ stack.rotate_left(32))
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the stub's standard generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion of the seed into the full state, per the
            // xoshiro authors' recommendation.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A fresh entropy-seeded [`rngs::StdRng`].
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

/// Commonly imported names.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let w = rng.gen_range(3u32..=9);
            assert!((3..=9).contains(&w));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn works_through_unsized_rng_bound() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> i64 {
            rng.gen_range(0..10)
        }
        let mut rng = StdRng::seed_from_u64(4);
        let v = draw(&mut rng);
        assert!((0..10).contains(&v));
    }
}
