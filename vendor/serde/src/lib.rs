//! Offline stub of `serde`: a single-pass [`Value`] data model.
//!
//! [`Serialize`] renders a value into [`Value`], which `serde_json` then
//! prints. [`Deserialize`] is accepted everywhere (derives compile to
//! nothing, the trait is blanket-implemented) because nothing in this
//! workspace deserializes — serialization feeds one-way JSON reports.

use std::time::Duration;

pub use serde_derive::{Deserialize, Serialize};

/// The serialization data model: what any serializable value lowers to.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered key-value map (field order preserved).
    Object(Vec<(String, Value)>),
}

/// A value that can lower itself into the [`Value`] data model.
pub trait Serialize {
    /// Renders `self` as a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Marker accepted wherever real serde would require `Deserialize`.
/// Blanket-implemented; the workspace never actually deserializes.
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}
impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for Duration {
    /// Matches real serde's `Duration` struct encoding.
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::UInt(self.as_secs())),
            ("nanos".to_string(), Value::UInt(self.subsec_nanos() as u64)),
        ])
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_lower_to_expected_variants() {
        assert_eq!(5u32.to_value(), Value::UInt(5));
        assert_eq!((-3i64).to_value(), Value::Int(-3));
        assert_eq!(1.5f64.to_value(), Value::Float(1.5));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_string().to_value(), Value::Str("x".into()));
        assert_eq!(None::<u64>.to_value(), Value::Null);
    }

    #[test]
    fn duration_matches_serde_encoding() {
        let d = Duration::new(3, 500);
        assert_eq!(
            d.to_value(),
            Value::Object(vec![
                ("secs".into(), Value::UInt(3)),
                ("nanos".into(), Value::UInt(500)),
            ])
        );
    }

    #[test]
    fn containers_nest() {
        let v = vec![(1u64, 2.0f64)];
        assert_eq!(
            v.to_value(),
            Value::Array(vec![Value::Array(vec![Value::UInt(1), Value::Float(2.0)])])
        );
    }
}
