//! Offline stub of `serde_derive`, written directly against `proc_macro`
//! (no `syn`/`quote` available offline).
//!
//! `#[derive(Serialize)]` generates `impl serde::Serialize` lowering the
//! type into `serde::Value`:
//!
//! * named structs → `Value::Object` in field order;
//! * newtype structs → the inner value (serde's newtype rule);
//! * tuple structs → `Value::Array`;
//! * unit enum variants → `Value::Str(variant_name)`;
//! * data-carrying variants → externally tagged `{"Variant": content}`,
//!   or the bare content under `#[serde(untagged)]`.
//!
//! `#[derive(Deserialize)]` expands to nothing — the `serde` stub
//! blanket-implements its marker `Deserialize` trait, and nothing in the
//! workspace deserializes.
//!
//! Unsupported shapes (generic types, unions) produce a `compile_error!`
//! naming the limitation rather than silently misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the stub `serde::Serialize` (see crate docs for the mapping).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match generate(input) {
        Ok(code) => code
            .parse()
            .expect("serde_derive stub emitted invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

/// Accepts and erases `#[derive(Deserialize)]` (blanket marker trait).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Skips `#[...]` attributes; returns true if any carried
    /// `serde(... untagged ...)`.
    fn skip_attrs(&mut self) -> bool {
        let mut untagged = false;
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.next(); // '#'
            if let Some(TokenTree::Group(g)) = self.peek() {
                let body = g.stream().to_string();
                if body.starts_with("serde") && body.contains("untagged") {
                    untagged = true;
                }
                self.next();
            }
        }
        untagged
    }

    /// Skips `pub`, `pub(crate)`, `pub(in ...)`.
    fn skip_vis(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    /// Skips tokens until a top-level `,` (angle-bracket depth aware);
    /// consumes the comma. Used to skip field types and discriminants.
    fn skip_past_comma(&mut self) {
        let mut angle: i32 = 0;
        while let Some(t) = self.next() {
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle <= 0 => return,
                    _ => {}
                }
            }
        }
    }
}

fn cursor_of(stream: TokenStream) -> Cursor {
    Cursor {
        tokens: stream.into_iter().collect(),
        pos: 0,
    }
}

fn generate(input: TokenStream) -> Result<String, String> {
    let mut c = cursor_of(input);
    let untagged = c.skip_attrs();
    c.skip_vis();

    let kind = match c.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    let name = match c.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde_derive stub: generic type `{name}` is not supported"
            ));
        }
    }

    match kind.as_str() {
        "struct" => generate_struct(&name, &mut c),
        "enum" => generate_enum(&name, untagged, &mut c),
        other => Err(format!("serde_derive stub: cannot derive for `{other}`")),
    }
}

/// Parses `{ field: Ty, ... }` contents into field names.
fn named_field_names(group: TokenStream) -> Result<Vec<String>, String> {
    let mut c = cursor_of(group);
    let mut fields = Vec::new();
    while !c.at_end() {
        c.skip_attrs();
        c.skip_vis();
        let fname = match c.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field, found {other:?}")),
        }
        c.skip_past_comma();
        fields.push(fname);
    }
    Ok(fields)
}

/// Counts the top-level comma-separated fields of a tuple struct/variant.
fn tuple_field_count(group: TokenStream) -> usize {
    let mut c = cursor_of(group);
    let mut count = 0;
    while !c.at_end() {
        c.skip_attrs();
        c.skip_vis();
        if c.at_end() {
            break;
        }
        count += 1;
        c.skip_past_comma();
    }
    count
}

fn object_expr(pairs: &[(String, String)]) -> String {
    let items: Vec<String> = pairs
        .iter()
        .map(|(k, v)| format!("({k:?}.to_string(), {v})"))
        .collect();
    format!("::serde::Value::Object(vec![{}])", items.join(", "))
}

fn generate_struct(name: &str, c: &mut Cursor) -> Result<String, String> {
    let body = match c.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let fields = named_field_names(g.stream())?;
            let pairs: Vec<(String, String)> = fields
                .iter()
                .map(|f| {
                    (
                        f.clone(),
                        format!("::serde::Serialize::to_value(&self.{f})"),
                    )
                })
                .collect();
            object_expr(&pairs)
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let n = tuple_field_count(g.stream());
            match n {
                0 => "::serde::Value::Null".to_string(),
                // serde's newtype rule: transparent.
                1 => "::serde::Serialize::to_value(&self.0)".to_string(),
                n => {
                    let items: Vec<String> = (0..n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
            }
        }
        other => return Err(format!("unsupported struct body: {other:?}")),
    };
    Ok(format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    ))
}

fn generate_enum(name: &str, untagged: bool, c: &mut Cursor) -> Result<String, String> {
    let group = match c.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => return Err(format!("expected enum body, found {other:?}")),
    };
    let mut vc = cursor_of(group.stream());
    let mut arms = Vec::new();
    while !vc.at_end() {
        vc.skip_attrs();
        if vc.at_end() {
            break;
        }
        let vname = match vc.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        let arm = match vc.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = tuple_field_count(g.stream());
                vc.next();
                let binds: Vec<String> = (0..n).map(|i| format!("f{i}")).collect();
                let content = if n == 1 {
                    "::serde::Serialize::to_value(f0)".to_string()
                } else {
                    let items: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                };
                let rhs = if untagged {
                    content
                } else {
                    object_expr(&[(vname.clone(), content)])
                };
                format!("{name}::{vname}({}) => {rhs},", binds.join(", "))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = named_field_names(g.stream())?;
                vc.next();
                let pairs: Vec<(String, String)> = fields
                    .iter()
                    .map(|f| (f.clone(), format!("::serde::Serialize::to_value({f})")))
                    .collect();
                let content = object_expr(&pairs);
                let rhs = if untagged {
                    content
                } else {
                    object_expr(&[(vname.clone(), content)])
                };
                format!("{name}::{vname} {{ {} }} => {rhs},", fields.join(", "))
            }
            _ => {
                // Unit variant; serde renders the variant name. An untagged
                // unit variant renders null.
                let rhs = if untagged {
                    "::serde::Value::Null".to_string()
                } else {
                    format!("::serde::Value::Str({vname:?}.to_string())")
                };
                format!("{name}::{vname} => {rhs},")
            }
        };
        arms.push(arm);
        // Skip an optional discriminant, then the trailing comma.
        vc.skip_past_comma();
    }
    Ok(format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n\
         match self {{\n{}\n}}\n\
         }}\n\
         }}",
        arms.join("\n")
    ))
}
