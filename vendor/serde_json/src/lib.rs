//! Offline stub of `serde_json`: renders the serde stub's [`Value`] tree as
//! JSON, compact ([`to_string`]) or pretty with 2-space indents
//! ([`to_string_pretty`], [`to_writer_pretty`]) — matching real
//! `serde_json`'s layout for the subset of shapes the workspace emits.

use serde::{Serialize, Value};
use std::fmt::Write as _;
use std::io;

/// Error type (I/O is the only failure mode the stub can hit).
pub type Error = io::Error;
/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes to a compact JSON string (`{"k":1}`).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to pretty JSON with 2-space indents.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Writes compact JSON to `writer`.
pub fn to_writer<W: io::Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    writer.write_all(to_string(value)?.as_bytes())
}

/// Writes pretty JSON to `writer`.
pub fn to_writer_pretty<W: io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<()> {
    writer.write_all(to_string_pretty(value)?.as_bytes())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            if !fields.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        let _ = write!(out, "{f:.1}");
    } else {
        let _ = write!(out, "{f}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_object() {
        let v = Value::Object(vec![
            ("id".into(), Value::Str("t".into())),
            ("n".into(), Value::UInt(3)),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"id":"t","n":3}"#);
    }

    #[test]
    fn pretty_object_has_spaced_colons_and_indent() {
        let v = Value::Object(vec![
            ("id".into(), Value::Str("t".into())),
            ("rows".into(), Value::Array(vec![Value::UInt(1)])),
        ]);
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"id\": \"t\""), "{s}");
        assert!(s.contains("\n  \"rows\": [\n    1\n  ]"), "{s}");
    }

    #[test]
    fn floats_and_escapes() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&"a\"b").unwrap(), r#""a\"b""#);
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string(&Value::Array(vec![])).unwrap(), "[]");
        assert_eq!(to_string(&Value::Object(vec![])).unwrap(), "{}");
    }
}
